package diffreg

// Benchmarks regenerating the paper's evaluation (one benchmark per table
// and figure, §IV). Each iteration performs the real measured work that
// underlies the corresponding table or figure at container-feasible size;
// `go run ./cmd/regbench -all` prints the full paper-vs-reproduction
// comparison built from the same machinery.

import (
	"math/rand"
	"runtime"
	"testing"

	"diffreg/internal/core"
	"diffreg/internal/field"
	"diffreg/internal/grid"
	"diffreg/internal/mpi"
	"diffreg/internal/paperbench"
	"diffreg/internal/par"
	"diffreg/internal/perfmodel"
	"diffreg/internal/pfft"
	"diffreg/internal/semilag"
	"diffreg/internal/spectral"
)

// solveBench runs one registration solve of the given problem per
// iteration and reports misfit reduction and phase metrics.
func solveBench(b *testing.B, n [3]int, p int, prob paperbench.Problem, cfg core.Config) {
	b.Helper()
	var out *core.Outcome
	for i := 0; i < b.N; i++ {
		var err error
		out, err = paperbench.RunMeasurement(n, p, prob, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	if out != nil {
		b.ReportMetric(float64(out.Counts.Matvecs), "matvecs")
		b.ReportMetric(float64(out.Counts.FFTs), "ffts")
		b.ReportMetric(out.MisfitFinal/out.MisfitInit, "misfit-ratio")
	}
}

// BenchmarkTableI_SyntheticSolve is the measured basis of Table I: the
// synthetic registration problem solved to gtol = 1e-2 at beta = 1e-2,
// serial and on 4 goroutine ranks.
func BenchmarkTableI_SyntheticSolve(b *testing.B) {
	cfg := core.DefaultConfig()
	cfg.SkipMap = true
	b.Run("tasks1", func(b *testing.B) {
		solveBench(b, [3]int{16, 16, 16}, 1, paperbench.SyntheticProblem, cfg)
	})
	b.Run("tasks4", func(b *testing.B) {
		solveBench(b, [3]int{16, 16, 16}, 4, paperbench.SyntheticProblem, cfg)
	})
}

// BenchmarkTableII_LargeScaleModel regenerates the Stampede predictions of
// Table II from the calibrated performance model (the 512^3-1024^3 grids
// themselves exceed a container, as discussed in DESIGN.md).
func BenchmarkTableII_LargeScaleModel(b *testing.B) {
	w := perfmodel.Workload{N: [3]int{512, 512, 512}, P: 1024, Nt: 4, FFTs: 436, InterpSweeps: 362}
	m := perfmodel.Calibrate("stampede", w, perfmodel.StampedeCalibration())
	for i := 0; i < b.N; i++ {
		for _, n := range []int{512, 1024} {
			for _, p := range []int{512, 1024, 2048} {
				w2 := w
				w2.N = [3]int{n, n, n}
				w2.P = p
				perfmodel.Predict(w2, m)
			}
		}
	}
}

// BenchmarkTableIII_Incompressible is the measured basis of Table III: the
// volume-preserving (div v = 0) solve with the Leray projection.
func BenchmarkTableIII_Incompressible(b *testing.B) {
	cfg := core.DefaultConfig()
	cfg.Opt.Incompressible = true
	solveBench(b, [3]int{16, 16, 16}, 2, paperbench.SyntheticIncompressible, cfg)
}

// BenchmarkTableIV_BrainSolve is the measured basis of Table IV: the
// multi-subject brain registration with two Newton iterations.
func BenchmarkTableIV_BrainSolve(b *testing.B) {
	cfg := core.DefaultConfig()
	cfg.SkipMap = true
	cfg.Newton.MaxIters = 2
	cfg.Newton.GradTol = 1e-12
	solveBench(b, [3]int{16, 18, 16}, 2, paperbench.BrainProblem, cfg)
}

// BenchmarkTableV_BetaSweep is the measured basis of Table V: four Newton
// iterations at decreasing regularization weights; the matvecs metric is
// the paper's reported quantity.
func BenchmarkTableV_BetaSweep(b *testing.B) {
	for _, beta := range []float64{1e-1, 1e-3} {
		name := "beta1e-1"
		if beta == 1e-3 {
			name = "beta1e-3"
		}
		b.Run(name, func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.SkipMap = true
			cfg.Opt.Beta = beta
			cfg.Newton.MaxIters = 4
			cfg.Newton.GradTol = 1e-14
			cfg.Newton.MaxKrylov = 2000
			solveBench(b, [3]int{16, 18, 16}, 1, paperbench.BrainProblem, cfg)
		})
	}
}

// BenchmarkFigure1_RigidVsDeformable regenerates the rigid-vs-deformable
// comparison of Fig. 1.
func BenchmarkFigure1_RigidVsDeformable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := paperbench.Figure1(""); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2_DetGradTaxonomy regenerates the deformation taxonomy of
// Fig. 2 (det(grad y) classes).
func BenchmarkFigure2_DetGradTaxonomy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := paperbench.Figure2(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3_ScatterPlan regenerates the off-rank departure-point
// census of Fig. 3.
func BenchmarkFigure3_ScatterPlan(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := paperbench.Figure3(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure4_PencilFFTTrace regenerates the transpose-traffic trace
// of Fig. 4.
func BenchmarkFigure4_PencilFFTTrace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := paperbench.Figure4(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure5_SyntheticProblem regenerates the synthetic problem
// construction and residual of Fig. 5.
func BenchmarkFigure5_SyntheticProblem(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := paperbench.Figure5(""); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure67_BrainRegistration regenerates the brain registration
// results of Figs. 6-7 (before/after residuals and det(grad y)).
func BenchmarkFigure67_BrainRegistration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := paperbench.Figure67("", true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtensionTimeSeries runs the multiframe (4D) registration
// extension end to end.
func BenchmarkExtensionTimeSeries(b *testing.B) {
	frames, err := SyntheticSequence(16, 16, 16, 2, 4, 0.7)
	if err != nil {
		b.Fatal(err)
	}
	var res *TimeSeriesResult
	for i := 0; i < b.N; i++ {
		res, err = RegisterTimeSeries(frames, Config{Tasks: 1})
		if err != nil {
			b.Fatal(err)
		}
	}
	if res != nil {
		b.ReportMetric(res.MisfitFinal/res.MisfitInit, "misfit-ratio")
	}
}

// BenchmarkExtensionNCC runs the NCC registration extension under an
// affine intensity rescaling.
func BenchmarkExtensionNCC(b *testing.B) {
	tmpl, ref, err := SyntheticProblem(16, 16, 16, 4, false)
	if err != nil {
		b.Fatal(err)
	}
	for i := range ref.Data {
		ref.Data[i] = 2*ref.Data[i] + 0.5
	}
	var res *Result
	for i := 0; i < b.N; i++ {
		res, err = Register(tmpl, ref, Config{Tasks: 1, Beta: 1e-3, Distance: "ncc"})
		if err != nil {
			b.Fatal(err)
		}
	}
	if res != nil {
		b.ReportMetric(res.MisfitFinal/res.MisfitInit, "misfit-ratio")
	}
}

// BenchmarkExtensionTimeVarying runs the non-stationary velocity extension.
func BenchmarkExtensionTimeVarying(b *testing.B) {
	tmpl, ref, err := SyntheticProblem(16, 16, 16, 4, false)
	if err != nil {
		b.Fatal(err)
	}
	var res *Result
	for i := 0; i < b.N; i++ {
		res, err = Register(tmpl, ref, Config{Tasks: 1, VelocityIntervals: 2})
		if err != nil {
			b.Fatal(err)
		}
	}
	if res != nil {
		b.ReportMetric(res.MisfitFinal/res.MisfitInit, "misfit-ratio")
	}
}

// pooledWorkers is the pool size used by the pooled halves of the
// serial-vs-pooled kernel benchmarks: GOMAXPROCS, but at least 4 so the
// chunk fan-out is exercised even on narrow CI machines (on a single
// hardware thread the pooled timing then simply matches serial).
func pooledWorkers() int {
	w := runtime.GOMAXPROCS(0)
	if w < 4 {
		w = 4
	}
	return w
}

// benchSerialVsPooled runs body once per iteration under pool size 1 and
// under pooledWorkers(), as sub-benchmarks "serial" and "pooled". The ratio
// of the two reported times is the intra-rank speedup of the kernel; the
// results themselves are bit-identical by the package par determinism
// guarantee (see TestRegistrationBitIdenticalAcrossPoolSizes).
func benchSerialVsPooled(b *testing.B, setup func(b *testing.B) func()) {
	run := func(workers int) func(b *testing.B) {
		return func(b *testing.B) {
			prev := par.SetWorkers(workers)
			defer par.SetWorkers(prev)
			body := setup(b)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				body()
			}
		}
	}
	b.Run("serial", run(1))
	b.Run("pooled", run(pooledWorkers()))
}

// BenchmarkPoolSpectral measures the Fourier-space diagonal operator
// scalings (inverse biharmonic + Leray projection, the two regularization
// hot paths of §III-B1) on a 64^3 single-rank grid, serial vs. pooled.
func BenchmarkPoolSpectral(b *testing.B) {
	benchSerialVsPooled(b, func(b *testing.B) func() {
		var body func()
		_, err := mpi.Run(1, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
			pe, err := grid.NewPencil(grid.MustNew(64, 64, 64), c)
			if err != nil {
				return err
			}
			ops := spectral.New(pfft.NewPlan(pe))
			v := field.NewVector(pe)
			rng := rand.New(rand.NewSource(21))
			for d := 0; d < 3; d++ {
				for i := range v.C[d].Data {
					v.C[d].Data[i] = rng.NormFloat64()
				}
			}
			body = func() { ops.Leray(ops.InvBiharm(v)) }
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		return body
	})
}

// BenchmarkPoolInterp measures the tricubic stencil evaluation sweep of the
// semi-Lagrangian plan (one scattered query per grid point, cell-sorted) on
// a 64^3 single-rank grid, serial vs. pooled.
func BenchmarkPoolInterp(b *testing.B) {
	benchSerialVsPooled(b, func(b *testing.B) func() {
		var body func()
		_, err := mpi.Run(1, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
			pe, err := grid.NewPencil(grid.MustNew(64, 64, 64), c)
			if err != nil {
				return err
			}
			rng := rand.New(rand.NewSource(22))
			nq := pe.LocalTotal()
			var pts [3][]float64
			for d := 0; d < 3; d++ {
				pts[d] = make([]float64, nq)
				for q := range pts[d] {
					pts[d][q] = rng.Float64() * 64
				}
			}
			plan := semilag.NewPlan(pe, pts)
			f := make([]float64, nq)
			for i := range f {
				f[i] = rng.NormFloat64()
			}
			body = func() { plan.Interp(f) }
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		return body
	})
}

// BenchmarkPoolFFT measures a full 64^3 forward+inverse pencil FFT
// round-trip (the per-pencil 1D line transforms dominate at one rank),
// serial vs. pooled.
func BenchmarkPoolFFT(b *testing.B) {
	benchSerialVsPooled(b, func(b *testing.B) func() {
		var body func()
		_, err := mpi.Run(1, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
			pe, err := grid.NewPencil(grid.MustNew(64, 64, 64), c)
			if err != nil {
				return err
			}
			plan := pfft.NewPlan(pe)
			rng := rand.New(rand.NewSource(23))
			s := make([]float64, pe.LocalTotal())
			for i := range s {
				s[i] = rng.NormFloat64()
			}
			body = func() {
				spec, _ := plan.Forward(s)
				plan.Inverse(spec)
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		return body
	})
}

// BenchmarkPoolAxpy measures the pointwise vector ops (package field /
// optim) that the pool parallelizes at DefaultGrain, serial vs. pooled, on
// a 64^3 three-component field.
func BenchmarkPoolAxpy(b *testing.B) {
	benchSerialVsPooled(b, func(b *testing.B) func() {
		var body func()
		_, err := mpi.Run(1, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
			pe, err := grid.NewPencil(grid.MustNew(64, 64, 64), c)
			if err != nil {
				return err
			}
			x, y := field.NewVector(pe), field.NewVector(pe)
			rng := rand.New(rand.NewSource(24))
			for d := 0; d < 3; d++ {
				for i := range x.C[d].Data {
					x.C[d].Data[i] = rng.NormFloat64()
					y.C[d].Data[i] = rng.NormFloat64()
				}
			}
			body = func() { y.Axpy(0.5, x) }
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		return body
	})
}
