package diffreg

import (
	"fmt"

	"diffreg/internal/core"
	"diffreg/internal/field"
	"diffreg/internal/grid"
	"diffreg/internal/imaging"
	"diffreg/internal/mpi"
	"diffreg/internal/optim"
	"diffreg/internal/pfft"
	"diffreg/internal/prec"
	"diffreg/internal/regopt"
	"diffreg/internal/spectral"
)

// FusedJob is one registration problem of a fused batch.
type FusedJob struct {
	Template  Volume
	Reference Volume
	// Config carries the job's solver knobs. The batch-shape fields —
	// grid dimensions, Tasks, Precision — must agree across all jobs of
	// the batch; beta, regularization, distance, tolerances, iteration
	// budgets, stop hooks, and progress callbacks vary freely per job.
	Config Config
}

// FusedInfo reports the scheduling shape of one fused solve.
type FusedInfo struct {
	// Jobs is the batch width that actually ran.
	Jobs int
	// EarlyDropouts counts jobs that finished while at least one
	// neighbor was still iterating — the batch-shrink events of the
	// fused solve.
	EarlyDropouts int
}

// RegisterFused solves B independent registrations as one fused solver
// pass: every rank runs B lock-stepped solver fibers, each on a
// duplicated communicator, and a per-rank scheduler routes all B jobs'
// spectral preconditioner applications through one 3·B-field transform
// batch (still 2 all-to-alls per transpose stage, in both the float64
// and float32 wire formats) and resolves their cooperative stop polls
// with one masked vector allreduce. Each job's numerical trajectory is
// exactly its solo Register trajectory — results are bit-identical —
// and a converged, failed, or interrupted job drops out without
// disturbing its neighbors. See DESIGN.md §11.
//
// All jobs must share grid dimensions, Tasks, and Precision, and must be
// "plain" solves: no grid continuation, no parameter continuation
// schedule, a stationary velocity, no checkpoint/resume, and no chaos
// injection. The plan source of the first job (if any) supplies the
// batch's operator-set lease; per-job Plans fields are otherwise
// ignored.
func RegisterFused(jobs []FusedJob) ([]*Result, *FusedInfo, error) {
	nb := len(jobs)
	if nb == 0 {
		return nil, nil, fmt.Errorf("diffreg: empty fused batch")
	}
	cfgs := make([]Config, nb)
	for j := range jobs {
		cfgs[j] = jobs[j].Config.withDefaults()
	}
	n := jobs[0].Template.N
	tasks := cfgs[0].Tasks
	precision, err := prec.Parse(cfgs[0].Precision)
	if err != nil {
		return nil, nil, fmt.Errorf("diffreg: %w", err)
	}
	dists := make([]regopt.Distance, nb)
	for j := range jobs {
		cfg := &cfgs[j]
		t, r := jobs[j].Template, jobs[j].Reference
		if t.N != r.N {
			return nil, nil, fmt.Errorf("diffreg: job %d: template %v and reference %v dimensions differ", j, t.N, r.N)
		}
		if t.N != n {
			return nil, nil, fmt.Errorf("diffreg: job %d: dims %v differ from the batch's %v (fused jobs must share a grid)", j, t.N, n)
		}
		if len(t.Data) != t.N[0]*t.N[1]*t.N[2] || len(r.Data) != len(t.Data) {
			return nil, nil, fmt.Errorf("diffreg: job %d: volume data length does not match dims %v", j, t.N)
		}
		if cfg.Tasks != tasks {
			return nil, nil, fmt.Errorf("diffreg: job %d: Tasks %d differs from the batch's %d", j, cfg.Tasks, tasks)
		}
		pj, err := prec.Parse(cfg.Precision)
		if err != nil {
			return nil, nil, fmt.Errorf("diffreg: job %d: %w", j, err)
		}
		if pj != precision {
			return nil, nil, fmt.Errorf("diffreg: job %d: precision %s differs from the batch's %s", j, pj, precision)
		}
		if cfg.MultilevelLevels > 1 {
			return nil, nil, fmt.Errorf("diffreg: job %d: fused batches do not support grid continuation", j)
		}
		if len(cfg.ContinuationBetas) > 0 {
			return nil, nil, fmt.Errorf("diffreg: job %d: fused batches do not support parameter continuation", j)
		}
		if cfg.VelocityIntervals > 1 {
			return nil, nil, fmt.Errorf("diffreg: job %d: fused batches require a stationary velocity", j)
		}
		if cfg.CheckpointPath != "" || cfg.Resume {
			return nil, nil, fmt.Errorf("diffreg: job %d: fused batches do not support checkpoint/restart", j)
		}
		if cfg.ChaosSpec != "" {
			return nil, nil, fmt.Errorf("diffreg: job %d: fused batches do not support chaos injection", j)
		}
		switch cfg.Distance {
		case "", "l2", "L2":
			dists[j] = nil
		case "ncc", "NCC":
			if cfg.Mask != nil {
				return nil, nil, fmt.Errorf("diffreg: job %d: Mask is incompatible with the NCC distance", j)
			}
			dists[j] = regopt.NCCDistance{}
		default:
			return nil, nil, fmt.Errorf("diffreg: job %d: unknown distance %q (l2 | ncc)", j, cfg.Distance)
		}
		if cfg.Mask != nil && cfg.Mask.N != t.N {
			return nil, nil, fmt.Errorf("diffreg: job %d: mask dims %v differ from image dims %v", j, cfg.Mask.N, t.N)
		}
	}
	g, err := grid.New(n[0], n[1], n[2])
	if err != nil {
		return nil, nil, err
	}

	// One lease covering every fiber's operator set plus the scheduler's
	// fused executor (slot nb). Keyed by slot count so fused arenas —
	// sized for 3·(B+1)-field batches — are never checked out by solos.
	var blease BatchPlanLease
	if cfgs[0].Plans != nil {
		if lease := cfgs[0].Plans.Acquire(n, tasks, precision.String(), nb+1); lease != nil {
			if bl, ok := lease.(BatchPlanLease); ok {
				blease = bl
				defer bl.Release()
			} else {
				lease.Release()
			}
		}
	}

	results := make([]*Result, nb)
	info := &FusedInfo{Jobs: nb}
	var solveErr error
	_, err = mpi.RunWith(tasks, mpi.RunOpts{Cost: mpi.DefaultCostModel()}, func(c *mpi.Comm) error {
		// Each job gets a duplicated communicator (uniform color, key =
		// rank ⇒ identical group and rank order); message matching is
		// per-communicator, so the B solves' traffic never mixes. The
		// scheduler's fused collectives run on the base communicator c.
		pes := make([]*grid.Pencil, nb)
		for j := 0; j < nb; j++ {
			pe, err := grid.NewPencil(g, c.Split(0, c.Rank()))
			if err != nil {
				return err
			}
			pes[j] = pe
		}
		peX, err := grid.NewPencil(g, c)
		if err != nil {
			return err
		}
		var exec *spectral.Ops
		if blease != nil {
			if ops := blease.OpsSlot(c.Rank(), nb); ops != nil {
				if err := ops.Rebind(peX); err != nil {
					solveErr = err
					return err
				}
				exec = ops
			}
		}
		if exec == nil {
			exec = spectral.New(pfft.NewPlanPrec(peX, precision))
		}

		rhoTs := make([]*field.Scalar, nb)
		rhoRs := make([]*field.Scalar, nb)
		ccfgs := make([]core.Config, nb)
		for j := 0; j < nb; j++ {
			cfg := &cfgs[j]
			rhoT := field.NewScalar(pes[j])
			rhoR := field.NewScalar(pes[j])
			var tData, rData []float64
			if c.Rank() == 0 {
				tData, rData = jobs[j].Template.Data, jobs[j].Reference.Data
			}
			rhoT.Scatter(tData)
			rhoR.Scatter(rData)
			if cfg.NormalizeIntensities {
				imaging.Normalize(rhoT)
				imaging.Normalize(rhoR)
			}
			dist := dists[j]
			if cfg.Mask != nil {
				w := field.NewScalar(pes[j])
				var mData []float64
				if c.Rank() == 0 {
					mData = cfg.Mask.Data
				}
				w.Scatter(mData)
				dist = regopt.WeightedL2Distance{W: w}
			}
			var v0 *field.Vector
			if cfg.InitialVelocity != nil {
				v0 = field.NewVector(pes[j])
				for d := 0; d < 3; d++ {
					var vd []float64
					if c.Rank() == 0 {
						vd = cfg.InitialVelocity[d].Data
					}
					v0.C[d].Scatter(vd)
				}
			}
			ccfg := core.Config{
				V0:        v0,
				Precision: precision,
				Intervals: 1,
				Opt: regopt.Options{
					Beta:           cfg.Beta,
					Reg:            cfg.Reg,
					Incompressible: cfg.Incompressible,
					DivPenalty:     cfg.DivPenalty,
					Distance:       dist,
					ShiftedPrec:    cfg.ShiftedPrec,
					TwoLevelPrec:   cfg.TwoLevelPrec,
					Nt:             cfg.TimeSteps,
					GaussNewton:    !cfg.FullNewton,
				},
				Newton:     optim.DefaultNewtonOptions(),
				FirstOrder: cfg.FirstOrder,
				Smooth:     cfg.Smooth,
				Checkpoint: core.CheckpointConfig{Stop: cfg.StopRequested},
			}
			ccfg.Newton.GradTol = cfg.GradTol
			ccfg.Newton.MaxIters = cfg.MaxNewtonIters
			if cfg.MaxKrylovIters > 0 {
				ccfg.Newton.MaxKrylov = cfg.MaxKrylovIters
			}
			if cfg.Verbose && cfg.Logf != nil && c.Rank() == 0 {
				ccfg.Newton.Log = cfg.Logf
			}
			if cfg.OnProgress != nil && c.Rank() == 0 {
				ccfg.OnProgress = cfg.OnProgress
			}
			if blease != nil {
				if ops := blease.OpsSlot(c.Rank(), j); ops != nil {
					if err := ops.Rebind(pes[j]); err != nil {
						solveErr = err
						return err
					}
					ccfg.Ops = ops
				}
			}
			rhoTs[j], rhoRs[j], ccfgs[j] = rhoT, rhoR, ccfg
		}

		outs, binfo, err := core.RegisterBatch(c, exec, pes, rhoTs, rhoRs, ccfgs)
		if err != nil {
			solveErr = err
			return err
		}
		if blease != nil {
			for j := 0; j < nb; j++ {
				if outs[j].Ops != nil {
					blease.PutSlot(c.Rank(), j, outs[j].Ops)
				}
			}
			blease.PutSlot(c.Rank(), nb, exec)
		}

		// Per-job gathers run sequentially on the (again single-threaded)
		// rank goroutine; each on its job's communicator.
		for j := 0; j < nb; j++ {
			out := outs[j]
			var warped, det []float64
			var vel, disp [3][]float64
			if out.Warped != nil {
				warped = out.Warped.Gather()
			}
			if out.Det != nil {
				det = out.Det.Gather()
			}
			for d := 0; d < 3; d++ {
				vel[d] = out.V.C[d].Gather()
				if out.U != nil {
					disp[d] = out.U.C[d].Gather()
				}
			}
			if c.Rank() == 0 {
				res := &Result{}
				res.Converged = out.Result.Converged
				res.Interrupted = out.Result.Interrupted
				res.Failed = out.Result.Failed
				res.FailReason = out.Result.FailReason
				res.Degradations = out.Result.Degradations
				res.NewtonIters = out.Counts.NewtonIters
				res.HessianMatvecs = out.Counts.Matvecs
				res.MisfitInit = out.MisfitInit
				res.MisfitFinal = out.MisfitFinal
				res.GnormInit = out.Result.GnormInit
				res.GnormFinal = out.Result.GnormLast
				res.DetMin, res.DetMax, res.DetMean = out.DetMin, out.DetMax, out.DetMean
				res.Warped = Volume{N: g.N, Data: warped}
				res.DetGrad = Volume{N: g.N, Data: det}
				for d := 0; d < 3; d++ {
					res.Velocity[d] = Volume{N: g.N, Data: vel[d]}
					res.Displacement[d] = Volume{N: g.N, Data: disp[d]}
				}
				res.Phases = out.Phases
				res.FFTs = out.Counts.FFTs
				res.InterpSweeps = out.Counts.InterpSweeps
				res.InterpMsgs = out.Counts.InterpMsgs
				res.InterpBytes = out.Counts.InterpBytes
				res.FusedInterpExchanges = out.Counts.FusedInterpExchanges
				res.FusedInterpJobs = out.Counts.FusedInterpJobs
				for _, h := range out.Result.History {
					res.History = append(res.History, IterationRecord{
						Iter: h.Iter, Objective: h.J, Misfit: h.Misfit,
						Gnorm: h.Gnorm, CGIters: h.CGIters, Step: h.Step,
					})
				}
				results[j] = res
			}
		}
		if c.Rank() == 0 {
			info.EarlyDropouts = binfo.Dropouts
		}
		return nil
	})
	if solveErr != nil {
		return nil, nil, solveErr
	}
	if err != nil {
		return nil, nil, err
	}
	return results, info, nil
}
