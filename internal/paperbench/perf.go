package paperbench

import (
	"encoding/json"
	"math/rand"
	"runtime"
	"time"

	"diffreg/internal/field"
	"diffreg/internal/grid"
	"diffreg/internal/mpi"
	"diffreg/internal/par"
	"diffreg/internal/pfft"
	"diffreg/internal/spectral"
)

// PerfCase is one measured spectral microbenchmark. Timing uses the
// session's worker pool; allocation counts are taken with a one-worker
// pool, the steady-state condition the zero-allocation gates assert.
type PerfCase struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

// PerfSnapshot is the machine-readable output of `regbench -perf`: the
// spectral hot-path microbenchmarks on a 64^3 single-rank grid plus the
// all-to-all counts of one 3-component vector forward at 4 ranks.
type PerfSnapshot struct {
	Grid        [3]int     `json:"grid"`
	PoolWorkers int        `json:"pool_workers"`
	Cases       []PerfCase `json:"cases"`

	VecFwdAlltoallsBatched  int64   `json:"vec_forward_alltoalls_batched"`
	VecFwdAlltoallsPerField int64   `json:"vec_forward_alltoalls_per_field"`
	BatchingFactor          float64 `json:"batching_factor"`
}

// measurePerf times body over iters runs (current pool), then re-runs
// allocIters times under a serial pool to count steady-state allocations.
func measurePerf(name string, iters, allocIters int, body func()) PerfCase {
	body() // warm plan and operator workspaces
	t0 := time.Now()
	for i := 0; i < iters; i++ {
		body()
	}
	ns := float64(time.Since(t0).Nanoseconds()) / float64(iters)

	prev := par.SetWorkers(1)
	body() // re-warm any serial-path state
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	for i := 0; i < allocIters; i++ {
		body()
	}
	runtime.ReadMemStats(&m1)
	par.SetWorkers(prev)
	return PerfCase{
		Name:        name,
		NsPerOp:     ns,
		AllocsPerOp: float64(m1.Mallocs-m0.Mallocs) / float64(allocIters),
		BytesPerOp:  float64(m1.TotalAlloc-m0.TotalAlloc) / float64(allocIters),
	}
}

// Perf measures the PR 3 spectral pipeline figures and returns them as
// JSON (the report text), suitable for redirecting into a BENCH file.
func Perf() (Report, error) {
	g := grid.MustNew(64, 64, 64)
	snap := PerfSnapshot{Grid: g.N, PoolWorkers: par.Workers()}

	_, err := mpi.Run(1, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
		pe, err := grid.NewPencil(g, c)
		if err != nil {
			return err
		}
		pl := pfft.NewPlan(pe)
		ops := spectral.New(pl)
		rng := rand.New(rand.NewSource(31))
		src := make([]float64, pe.LocalTotal())
		for i := range src {
			src[i] = rng.NormFloat64()
		}
		spec := make([]complex128, pl.SpecLocalTotal())
		back := make([]float64, pe.LocalTotal())
		v := field.NewVector(pe)
		for d := 0; d < 3; d++ {
			for i := range v.C[d].Data {
				v.C[d].Data[i] = rng.NormFloat64()
			}
		}

		snap.Cases = append(snap.Cases,
			measurePerf("fft_roundtrip_alloc", 8, 4, func() {
				s, _ := pl.Forward(src)
				_, _ = pl.Inverse(s)
			}),
			measurePerf("fft_roundtrip_into", 8, 4, func() {
				_ = pl.ForwardInto(src, spec)
				_ = pl.InverseInto(spec, back)
			}),
			measurePerf("leray_alloc", 4, 2, func() { _ = ops.Leray(v) }),
			measurePerf("leray_inplace", 4, 2, func() { ops.LerayInPlace(v) }),
		)
		return nil
	})
	if err != nil {
		return Report{}, err
	}

	// All-to-all counts of a 3-component vector forward at 4 ranks: the
	// batched transform must issue one exchange per transpose stage, the
	// per-field path one per stage per field.
	_, err = mpi.Run(4, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
		pe, err := grid.NewPencil(g, c)
		if err != nil {
			return err
		}
		pl := pfft.NewPlan(pe)
		srcs := make([][]float64, 3)
		rng := rand.New(rand.NewSource(int64(32 + c.Rank())))
		for b := range srcs {
			srcs[b] = make([]float64, pe.LocalTotal())
			for i := range srcs[b] {
				srcs[b][i] = rng.NormFloat64()
			}
		}
		before := *c.Stats()
		if _, err := pl.ForwardBatch(srcs); err != nil {
			return err
		}
		mid := *c.Stats()
		for _, s := range srcs {
			if _, err := pl.Forward(s); err != nil {
				return err
			}
		}
		after := *c.Stats()
		if c.Rank() == 0 {
			snap.VecFwdAlltoallsBatched = mid.Alltoalls - before.Alltoalls
			snap.VecFwdAlltoallsPerField = after.Alltoalls - mid.Alltoalls
			stages := mid.TransposeStages - before.TransposeStages
			if stages > 0 {
				snap.BatchingFactor = float64(mid.TransposeFields-before.TransposeFields) / float64(stages)
			}
		}
		return nil
	})
	if err != nil {
		return Report{}, err
	}

	text, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return Report{}, err
	}
	return Report{Title: "Spectral pipeline performance snapshot", Text: string(text)}, nil
}
