// Package regopt assembles the reduced-space optimality system of the
// paper: the PDE-constrained objective (2), its reduced gradient (4), the
// (Gauss-)Newton Hessian matvec (5), and the inverse-regularization
// spectral preconditioner. These are exactly the callbacks the paper's
// implementation hands to PETSc/TAO; package optim plays the role of TAO.
package regopt

import (
	"fmt"
	"math"

	"diffreg/internal/field"
	"diffreg/internal/grid"
	"diffreg/internal/spectral"
	"diffreg/internal/transport"
)

// RegKind selects the regularization seminorm for the velocity.
type RegKind int

const (
	// RegH2 penalizes the H2 seminorm beta/2 ||lap v||^2; the
	// regularization operator is the biharmonic operator, whose spectral
	// inverse is the preconditioner the paper describes. It is the zero
	// value and the paper's default (required for the incompressible,
	// volume-preserving case).
	RegH2 RegKind = iota
	// RegH1 penalizes the H1 seminorm beta/2 ||grad v||^2; the
	// regularization operator is the (negative vector) Laplacian.
	RegH1
)

func (k RegKind) String() string {
	if k == RegH1 {
		return "H1"
	}
	return "H2"
}

// Options configures the optimal control problem.
type Options struct {
	Beta           float64 // regularization parameter beta > 0
	Reg            RegKind
	Incompressible bool // enforce div v = 0 through the Leray projection
	Nt             int  // number of semi-Lagrangian time steps
	GaussNewton    bool // drop the lambda terms of (5) (paper default)
	// DivPenalty adds the soft volume-change penalty gamma/2 ||div v||^2
	// to the objective (the approach of packages like NIFTYREG, which the
	// paper contrasts with its exact Leray-projection constraint). It is
	// ignored when Incompressible is set — the hard constraint subsumes it.
	DivPenalty float64
	// Distance selects the image similarity measure (nil = L2Distance).
	Distance Distance
	// TwoLevelPrec switches to the two-level coarse-grid Hessian
	// preconditioner (see TwoLevelPrec); it subsumes ShiftedPrec.
	TwoLevelPrec bool
	// ShiftedPrec augments the paper's inverse-regularization
	// preconditioner with a spectral shift estimated from the data term:
	// M = beta*A + sigma*I with sigma a Rayleigh-quotient estimate of the
	// data-term magnitude, refreshed at every gradient evaluation. The
	// shift bounds the preconditioned spectrum from below, reducing the
	// beta-sensitivity the paper reports in Table V (it is a cheap stand-in
	// for the multilevel preconditioning listed as future work).
	ShiftedPrec bool
}

// dist returns the active distance measure.
func (o *Options) dist() Distance {
	if o.Distance == nil {
		return L2Distance{}
	}
	return o.Distance
}

// DefaultOptions mirrors the paper's experimental setup (§IV-A3):
// beta = 1e-2, nt = 4, Gauss-Newton.
func DefaultOptions() Options {
	return Options{Beta: 1e-2, Reg: RegH2, Nt: 4, GaussNewton: true}
}

// Problem binds a template/reference image pair to the discretized
// optimality system.
type Problem struct {
	Pe   *grid.Pencil
	Ops  *spectral.Ops
	TS   *transport.Solver
	RhoT *field.Scalar // template image (rho at t=0)
	RhoR *field.Scalar // reference image
	Opt  Options

	// sigma is the current data-term shift of the shifted preconditioner.
	sigma float64
	// tl is the lazily built two-level preconditioner state.
	tl *TwoLevelPrec
	// lastEval caches the most recent Evaluate result, keyed by the
	// velocity object identity. The Newton line search evaluates the
	// objective at candidate iterates and then hands the accepted
	// candidate — the same object — to EvalGradient, which can therefore
	// reuse the transport solve instead of repeating it.
	lastEval *Eval

	// Counters used by the reports and the performance model.
	StateSolves   int
	AdjointSolves int
	Matvecs       int
}

// New validates the options and builds a problem.
func New(ops *spectral.Ops, rhoT, rhoR *field.Scalar, opt Options) (*Problem, error) {
	if opt.Beta <= 0 {
		return nil, fmt.Errorf("regopt: beta must be positive, got %g", opt.Beta)
	}
	if opt.Nt < 1 {
		return nil, fmt.Errorf("regopt: nt must be >= 1, got %d", opt.Nt)
	}
	return &Problem{
		Pe:   ops.Pe,
		Ops:  ops,
		TS:   transport.NewSolver(ops, opt.Nt),
		RhoT: rhoT,
		RhoR: rhoR,
		Opt:  opt,
	}, nil
}

// Eval caches everything computed at one velocity iterate: the transport
// context (departure plans), the state and adjoint trajectories, the state
// gradients reused by the Hessian matvecs, and the objective values.
type Eval struct {
	V       *field.Vector
	Ctx     *transport.Context
	States  [][]float64
	GradRho [][3][]float64
	Lambdas [][]float64

	J      float64 // total objective
	Misfit float64 // 1/2 ||rho(1) - rho_R||^2
	RegE   float64 // beta/2 * seminorm
	G      *field.Vector
	Gnorm  float64

	// Poisoned marks an evaluation of a non-finite velocity: no transport
	// was attempted (Ctx is nil), J is +Inf so any line search rejects the
	// candidate, and the gradient is NaN-normed so the optimizer's guards
	// trip instead of a solver deep in the transport stack.
	Poisoned bool
}

// regApply applies the regularization operator A (without beta).
func (p *Problem) regApply(v *field.Vector) *field.Vector {
	if p.Opt.Reg == RegH1 {
		lap := p.Ops.VecLap(v)
		lap.Scale(-1)
		return lap
	}
	return p.Ops.Biharm(v)
}

// Project applies the Leray projection when the problem is incompressible
// and is the identity otherwise.
func (p *Problem) Project(v *field.Vector) *field.Vector {
	if p.Opt.Incompressible {
		return p.Ops.Leray(v)
	}
	return v
}

// Evaluate computes the objective at v (one forward solve). The full
// state trajectory is retained and the evaluation is cached under the
// identity of v: when the line search accepts a candidate and the
// optimizer asks for its gradient, EvalGradient finds the transport solve
// already done. The per-trial trajectory storage ((nt+1) N^3/p values) is
// transient, so the §III-C4 memory accounting is unchanged in steady
// state.
func (p *Problem) Evaluate(v *field.Vector) *Eval {
	// Collective finiteness pre-check: a non-finite velocity (a corrupted
	// Krylov step or line-search candidate) would otherwise surface as a
	// BadPointError deep in the semi-Lagrangian plan and abort the world.
	// Poisoning the evaluation instead keeps the failure inside the
	// optimizer, where the guard ladder can recover. The check is an
	// allreduce, so every rank takes the same branch.
	if !v.AllFinite() {
		e := &Eval{V: v, Poisoned: true, J: math.Inf(1), Misfit: math.Inf(1)}
		p.lastEval = e
		return e
	}
	e := &Eval{V: v}
	e.Ctx = p.TS.NewContext(v, p.Opt.Incompressible)
	e.States = p.TS.State(e.Ctx, p.RhoT)
	p.StateSolves++
	p.finishObjective(e)
	p.lastEval = e
	return e
}

// cachedEval returns the cached evaluation of v, or a fresh one. The
// cache is keyed by object identity — callers that mutate a velocity in
// place after evaluating it (nothing in this repo does) would have to
// invalidate it by evaluating another field first.
func (p *Problem) cachedEval(v *field.Vector) *Eval {
	if e := p.lastEval; e != nil && e.V == v {
		return e
	}
	return p.Evaluate(v)
}

// rho1Of wraps the final state slice as a scalar field view.
func (p *Problem) rho1Of(states [][]float64) *field.Scalar {
	out := field.NewScalar(p.Pe)
	copy(out.Data, states[p.Opt.Nt])
	return out
}

// finishObjective fills the objective terms from the state trajectory.
func (p *Problem) finishObjective(e *Eval) {
	e.Misfit = p.Opt.dist().Eval(p.rho1Of(e.States), p.RhoR)
	av := p.regApply(e.V)
	e.RegE = 0.5 * p.Opt.Beta * av.Dot(e.V)
	if gamma := p.divGamma(); gamma > 0 {
		dv := p.Ops.Div(e.V)
		e.RegE += 0.5 * gamma * dv.Dot(dv)
	}
	e.J = e.Misfit + e.RegE
}

// divGamma returns the active soft-penalty weight (zero when the hard
// constraint is on).
func (p *Problem) divGamma() float64 {
	if p.Opt.Incompressible {
		return 0
	}
	return p.Opt.DivPenalty
}

// EvalGradient computes the objective and the reduced L2 gradient (4):
// g = beta*A*v + P * int_0^1 lambda grad(rho) dt.
// It also caches the state gradients and adjoint trajectory for the
// subsequent Hessian matvecs of this Newton iteration.
func (p *Problem) EvalGradient(v *field.Vector) *Eval {
	e := p.cachedEval(v)
	if e.Poisoned {
		// No transport state exists; report a NaN gradient norm (tripping
		// the optimizer's non-finite guard) and skip the preconditioner
		// refresh paths, which need a valid evaluation point.
		e.G = field.NewVector(p.Pe)
		e.Gnorm = math.NaN()
		return e
	}
	lamT := p.Opt.dist().TerminalAdjoint(p.rho1Of(e.States), p.RhoR)
	e.Lambdas = p.TS.Adjoint(e.Ctx, lamT)
	p.AdjointSolves++
	e.GradRho = p.TS.GradSlices(e.States)

	b := p.accumulateB(e.Lambdas, e.GradRho)
	g := p.regApply(v)
	g.Scale(p.Opt.Beta)
	g.Axpy(1, p.Project(b))
	if gamma := p.divGamma(); gamma > 0 {
		// d/dv [gamma/2 ||div v||^2] = -gamma grad(div v).
		g.Axpy(-gamma, p.Ops.GradDiv(v))
	}
	e.G = g
	e.Gnorm = g.NormL2()
	if p.Opt.TwoLevelPrec {
		if p.tl == nil {
			tl, err := NewTwoLevelPrec(p, 0)
			if err != nil {
				// Grid too small for coarsening: fall back silently to the
				// single-level preconditioner.
				p.Opt.TwoLevelPrec = false
			} else {
				p.tl = tl
			}
		}
		if p.tl != nil {
			p.tl.Refresh(v)
		}
	} else if p.Opt.ShiftedPrec {
		p.refreshShift(e)
	}
	return e
}

// refreshShift estimates the data-term magnitude with a Rayleigh quotient
// of the Gauss-Newton data operator along a smooth probe direction:
// sigma = <Q w, w> / <w, w> with Q w = H w - beta*A*w. One extra matvec
// per Newton iteration.
func (p *Problem) refreshShift(e *Eval) {
	w := field.NewVector(p.Pe)
	w.SetFunc(func(x1, x2, x3 float64) (float64, float64, float64) {
		return math.Sin(x1) * math.Cos(x2), math.Sin(x2) * math.Cos(x3), math.Sin(x3) * math.Cos(x1)
	})
	w = p.Project(w)
	hw := p.HessMatVec(e, w)
	aw := p.regApply(w)
	q := hw.Dot(w) - p.Opt.Beta*aw.Dot(w)
	ww := w.Dot(w)
	sigma := q / ww
	if sigma < 0 {
		sigma = 0
	}
	p.sigma = sigma
}

// accumulateB computes b = int_0^1 lam(t) grad rho(t) dt with the
// composite trapezoidal rule over the stored time slices.
func (p *Problem) accumulateB(lams [][]float64, gradRho [][3][]float64) *field.Vector {
	nt := p.Opt.Nt
	dt := 1 / float64(nt)
	b := field.NewVector(p.Pe)
	for j := 0; j <= nt; j++ {
		w := dt
		if j == 0 || j == nt {
			w = dt / 2
		}
		lam := lams[j]
		for d := 0; d < 3; d++ {
			gr := gradRho[j][d]
			dst := b.C[d].Data
			for i := range dst {
				dst[i] += w * lam[i] * gr[i]
			}
		}
	}
	return b
}

// HessMatVec applies the reduced Hessian (5e) at the evaluation point e to
// the direction vt:
//
//	H vt = beta*A*vt + P * int_0^1 (lam~ grad rho [+ lam grad rho~]) dt,
//
// where rho~ solves the incremental state equation (5a) and lam~ the
// incremental adjoint (5c). In Gauss-Newton mode the bracketed term and
// the lambda term of (5c) are dropped, as in the paper's experiments.
func (p *Problem) HessMatVec(e *Eval, vt *field.Vector) *field.Vector {
	p.Matvecs++
	incStates := p.TS.IncState(e.Ctx, e.GradRho, vt)
	term := p.Opt.dist().IncTerminal(p.rho1Of(e.States), p.RhoR, incStates[p.Opt.Nt])

	var lamsT [][]float64
	if p.Opt.GaussNewton {
		lamsT = p.TS.IncAdjointGN(e.Ctx, term)
	} else {
		lamsT = p.TS.IncAdjointNewton(e.Ctx, e.Lambdas, vt, term)
	}

	bt := p.accumulateB(lamsT, e.GradRho)
	if !p.Opt.GaussNewton {
		// Full Newton: b~ also carries int lam grad(rho~) dt.
		gradInc := p.TS.GradSlices(incStates)
		bt2 := p.accumulateB(e.Lambdas, gradInc)
		bt.Axpy(1, bt2)
	}

	h := p.regApply(vt)
	h.Scale(p.Opt.Beta)
	h.Axpy(1, p.Project(bt))
	if gamma := p.divGamma(); gamma > 0 {
		h.Axpy(-gamma, p.Ops.GradDiv(vt))
	}
	return h
}

// ApplyPrec applies the paper's spectral preconditioner: the inverse of
// the (beta-scaled) regularization operator — the biharmonic inverse for
// the H2 seminorm — applied as a diagonal scaling in Fourier space "in
// nearly linear time using FFTs". The zero mode, where the operator is
// singular, falls back to the plain 1/beta scaling. The preconditioned
// Hessian is I + (beta A)^{-1} Q, which gives the paper's behaviour:
// mesh-independent Krylov iterations, but conditioning that deteriorates
// as beta shrinks (Table V).
func (p *Problem) ApplyPrec(r *field.Vector) *field.Vector {
	if p.Opt.TwoLevelPrec && p.tl != nil {
		return p.tl.Apply(r)
	}
	beta := p.Opt.Beta
	h2 := p.Opt.Reg == RegH2
	sigma := 0.0
	if p.Opt.ShiftedPrec {
		sigma = p.sigma
	}
	return p.Ops.DiagVector(r, func(k1, k2, k3 int) float64 {
		q := float64(k1*k1 + k2*k2 + k3*k3)
		a := q
		if h2 {
			a = q * q
		}
		if sigma == 0 && a == 0 {
			a = 1
		}
		return 1 / (beta*a + sigma)
	})
}

// Residual returns the pointwise misfit |rho(1) - rho_R| of an evaluation.
func (p *Problem) Residual(e *Eval) *field.Scalar {
	out := field.NewScalar(p.Pe)
	last := e.States[p.Opt.Nt]
	for i := range out.Data {
		d := last[i] - p.RhoR.Data[i]
		if d < 0 {
			d = -d
		}
		out.Data[i] = d
	}
	return out
}
