package check

import (
	"encoding/json"
	"testing"
)

// TestQuickSuite runs the full harness in its quick configuration at p=1
// and p=4 — the same gates CI enforces through cmd/regcheck. Every finding
// is reported individually so a regression names the broken property.
func TestQuickSuite(t *testing.T) {
	opt := QuickOptions()
	rep, err := Run(opt)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(rep.Findings) == 0 {
		t.Fatal("no findings produced")
	}
	for _, f := range rep.Findings {
		if !f.Pass {
			t.Errorf("p=%d %s/%s: measured %.4e vs limit (%s) %.4e — %s",
				f.Ranks, f.Group, f.Name, f.Measured, f.Mode, f.Limit, f.Detail)
		}
	}
	if t.Failed() {
		t.Log("\n" + rep.Summary())
	}
}

// TestFindingsMatchAcrossRanks pins decomposition independence of the
// harness itself: every property measured at p=1 must be measured at p=4
// too, under the same name and gate.
func TestFindingsMatchAcrossRanks(t *testing.T) {
	opt := QuickOptions()
	rep, err := Run(opt)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	byRanks := map[int][]string{}
	for _, f := range rep.Findings {
		byRanks[f.Ranks] = append(byRanks[f.Ranks], f.Group+"/"+f.Name)
	}
	if len(byRanks) != len(opt.Ranks) {
		t.Fatalf("rank counts covered: %d, want %d", len(byRanks), len(opt.Ranks))
	}
	names := byRanks[opt.Ranks[0]]
	for _, p := range opt.Ranks[1:] {
		got := byRanks[p]
		if len(got) != len(names) {
			t.Fatalf("p=%d produced %d findings, p=%d produced %d",
				p, len(got), opt.Ranks[0], len(names))
		}
		for i := range names {
			if got[i] != names[i] {
				t.Errorf("finding %d: p=%d has %s, p=%d has %s", i, p, got[i], opt.Ranks[0], names[i])
			}
		}
	}
}

// TestReportJSONShape verifies the machine-readable report round-trips and
// carries the verdict fields CI gates on.
func TestReportJSONShape(t *testing.T) {
	rep := &Report{N: 16, Nt: 4, Ranks: []int{1}}
	rep.add(Finding{Group: "adjoint", Name: "ok", Ranks: 1, Measured: 1e-15, Limit: 1e-12, Mode: ModeMax})
	rep.add(Finding{Group: "taylor", Name: "order", Ranks: 1, Measured: 2.0, Limit: 1.9, Mode: ModeMin})
	rep.add(Finding{Group: "taylor", Name: "bad", Ranks: 1, Measured: 1.0, Limit: 1.9, Mode: ModeMin})
	if rep.Passed != 2 || rep.Failed != 1 || rep.OK() {
		t.Fatalf("verdict accounting: passed=%d failed=%d", rep.Passed, rep.Failed)
	}
	blob, err := rep.JSON()
	if err != nil {
		t.Fatalf("json: %v", err)
	}
	var back Report
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(back.Findings) != 3 || back.Findings[0].Pass != true || back.Findings[2].Pass != false {
		t.Fatalf("roundtrip lost verdicts: %+v", back.Findings)
	}
}
