package regopt_test

import (
	"math"
	"testing"

	"diffreg/internal/field"
	"diffreg/internal/grid"
	"diffreg/internal/mpi"
	"diffreg/internal/pfft"
	regopt "diffreg/internal/regopt"
	"diffreg/internal/spectral"
)

// TestGradFDConvergence verifies that the mismatch between the analytic
// reduced gradient and the finite difference of the discrete objective is
// a consistency error: it must shrink as the spatial grid is refined.
func TestGradFDConvergence(t *testing.T) {
	rels := []float64{}
	for _, cfg := range []struct{ n, nt int }{{16, 4}, {24, 4}, {24, 8}, {32, 8}} {
		g := grid.MustNew(cfg.n, cfg.n, cfg.n)
		_, err := mpi.Run(1, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
			pe, _ := grid.NewPencil(g, c)
			ops := spectral.New(pfft.NewPlan(pe))
			rhoT := field.NewScalar(pe)
			rhoT.SetFunc(func(x1, x2, x3 float64) float64 {
				s1, s2, s3 := math.Sin(x1), math.Sin(x2), math.Sin(x3)
				return (s1*s1 + s2*s2 + s3*s3) / 3
			})
			vStar := field.NewVector(pe)
			vStar.SetFunc(func(x1, x2, x3 float64) (float64, float64, float64) {
				return 0.5 * math.Cos(x1) * math.Sin(x2), 0.5 * math.Cos(x2) * math.Sin(x1), 0.5 * math.Cos(x1) * math.Sin(x3)
			})
			opt := regopt.Options{Beta: 1e-2, Reg: regopt.RegH2, Nt: cfg.nt, GaussNewton: true}
			prTmp, _ := regopt.New(ops, rhoT, rhoT, opt)
			ctx := prTmp.TS.NewContext(vStar, false)
			rhoR := field.NewScalar(pe)
			copy(rhoR.Data, prTmp.TS.State(ctx, rhoT)[opt.Nt])
			pr, _ := regopt.New(ops, rhoT, rhoR, opt)

			v := field.NewVector(pe)
			v.SetFunc(func(x1, x2, x3 float64) (float64, float64, float64) {
				return 0.2 * math.Sin(x2) * math.Cos(x3), -0.15 * math.Cos(x1), 0.1 * math.Sin(x1+x2)
			})
			w := field.NewVector(pe)
			w.SetFunc(func(x1, x2, x3 float64) (float64, float64, float64) {
				return 0.3 * math.Cos(x2+x3), 0.2 * math.Sin(x3), -0.25 * math.Cos(x1) * math.Sin(x2)
			})
			e := pr.EvalGradient(v)
			gw := e.G.Dot(w)
			eps := 1e-5
			vp := v.Clone()
			vp.Axpy(eps, w)
			vm := v.Clone()
			vm.Axpy(-eps, w)
			fd := (pr.Evaluate(vp).J - pr.Evaluate(vm).J) / (2 * eps)
			rel := math.Abs(gw-fd) / math.Abs(fd)
			t.Logf("n=%d nt=%d: gw=%g fd=%g rel=%g", cfg.n, cfg.nt, gw, fd, rel)
			rels = append(rels, rel)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if rels[len(rels)-1] >= rels[0]/2 {
		t.Errorf("consistency error does not converge: %v", rels)
	}
}
