// Command regsolve runs a single diffeomorphic registration: either one of
// the built-in problems (synthetic / brain phantom) or a pair of raw
// volumes produced by imggen or any MetaImage-compatible tool.
//
// Examples:
//
//	regsolve -problem synthetic -n 32 -tasks 4 -beta 1e-2
//	regsolve -problem brain -n1 32 -n2 37 -n3 32 -beta 1e-3 -incompressible
//	regsolve -template t.raw -reference r.raw -n 64 -out result/
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"sync/atomic"
	"syscall"

	"diffreg"
	"diffreg/internal/grid"
	"diffreg/internal/imaging"
	"diffreg/internal/mpi"
)

func main() {
	problem := flag.String("problem", "synthetic", "synthetic | brain | files")
	n := flag.Int("n", 32, "cubic grid size (shorthand for -n1/-n2/-n3)")
	n1 := flag.Int("n1", 0, "grid size, dimension 1")
	n2 := flag.Int("n2", 0, "grid size, dimension 2")
	n3 := flag.Int("n3", 0, "grid size, dimension 3")
	tasks := flag.Int("tasks", 1, "number of ranks")
	beta := flag.Float64("beta", 1e-2, "regularization weight")
	regName := flag.String("reg", "h2", "regularization seminorm: h1 | h2")
	nt := flag.Int("nt", 4, "semi-Lagrangian time steps")
	incompressible := flag.Bool("incompressible", false, "enforce div v = 0 (volume preserving)")
	divPenalty := flag.Float64("divpenalty", 0, "soft volume-change penalty weight (alternative to -incompressible)")
	distance := flag.String("distance", "l2", "image similarity measure: l2 | ncc")
	precision := flag.String("precision", "float64", "solver numeric mode: float64 (reference) | float32 (narrow wire + transport)")
	intervals := flag.Int("intervals", 1, "velocity intervals (>1 = time-varying velocity)")
	multilevel := flag.Int("multilevel", 1, "grid continuation levels (>1 = coarse-to-fine)")
	shiftedPrec := flag.Bool("shifted-prec", false, "data-shifted spectral preconditioner")
	twoLevelPrec := flag.Bool("two-level-prec", false, "two-level coarse-grid Hessian preconditioner")
	firstOrder := flag.Bool("first-order", false, "use the steepest-descent baseline")
	fullNewton := flag.Bool("full-newton", false, "keep the second-order Hessian terms")
	gtol := flag.Float64("gtol", 1e-2, "relative gradient tolerance")
	maxIters := flag.Int("maxiters", 50, "maximum Newton iterations")
	templatePath := flag.String("template", "", "raw template volume (with -problem files)")
	referencePath := flag.String("reference", "", "raw reference volume (with -problem files)")
	out := flag.String("out", "", "output directory for result volumes (MHD + PGM slices)")
	quiet := flag.Bool("quiet", false, "suppress per-iteration output")
	checkpoint := flag.String("checkpoint", "", "checkpoint file: optimizer state is saved here periodically and on SIGINT/SIGTERM")
	checkpointEvery := flag.Int("checkpoint-every", 5, "outer iterations between checkpoints")
	resume := flag.Bool("resume", false, "resume from the -checkpoint file (bit-identical to the uninterrupted run)")
	chaos := flag.String("chaos", "", "fault-injection spec, e.g. 'seed=7;site=1:fft-comm:send:3:bitflip' (see mpi.ParseFaultSpec)")
	flag.Parse()

	if *n1 == 0 {
		*n1 = *n
	}
	if *n2 == 0 {
		*n2 = *n
	}
	if *n3 == 0 {
		*n3 = *n
	}

	var tmpl, ref diffreg.Volume
	var err error
	switch *problem {
	case "synthetic":
		tmpl, ref, err = diffreg.SyntheticProblem(*n1, *n2, *n3, *nt, *incompressible)
	case "brain":
		tmpl, ref, err = diffreg.BrainPhantomPair(*n1, *n2, *n3, 1, 2)
	case "files":
		tmpl, err = loadRaw(*templatePath, *n1, *n2, *n3)
		if err == nil {
			ref, err = loadRaw(*referencePath, *n1, *n2, *n3)
		}
	default:
		err = fmt.Errorf("unknown problem %q", *problem)
	}
	if err != nil {
		fail(err)
	}

	reg := diffreg.RegH2
	if *regName == "h1" {
		reg = diffreg.RegH1
	}
	cfg := diffreg.Config{
		Tasks:             *tasks,
		Beta:              *beta,
		Reg:               reg,
		Incompressible:    *incompressible,
		DivPenalty:        *divPenalty,
		Distance:          *distance,
		Precision:         *precision,
		TimeSteps:         *nt,
		VelocityIntervals: *intervals,
		MultilevelLevels:  *multilevel,
		ShiftedPrec:       *shiftedPrec,
		TwoLevelPrec:      *twoLevelPrec,
		FirstOrder:        *firstOrder,
		FullNewton:        *fullNewton,
		GradTol:           *gtol,
		MaxNewtonIters:    *maxIters,
	}
	if !*quiet {
		cfg.Verbose = true
		cfg.Logf = func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		}
	}
	cfg.CheckpointPath = *checkpoint
	cfg.CheckpointEvery = *checkpointEvery
	cfg.Resume = *resume
	cfg.ChaosSpec = *chaos

	// SIGINT/SIGTERM: request a cooperative stop at the next iteration
	// boundary (the solver flushes a final checkpoint); a second signal
	// exits immediately.
	var stopFlag atomic.Bool
	cfg.StopRequested = stopFlag.Load
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-sigCh
		fmt.Fprintln(os.Stderr, "\nregsolve: interrupt received, stopping at the next iteration boundary (send again to exit now)")
		stopFlag.Store(true)
		<-sigCh
		os.Exit(130)
	}()

	res, err := diffreg.Register(tmpl, ref, cfg)
	if err != nil {
		var comm *mpi.CommError
		if errors.As(err, &comm) {
			fmt.Fprintf(os.Stderr, "regsolve: communication failure: %v\n", comm)
			fmt.Fprintf(os.Stderr, "regsolve: (rank %d, phase %s, op %s)", comm.Rank, comm.Phase, comm.Op)
			if *checkpoint != "" {
				fmt.Fprintf(os.Stderr, " — resume from the last checkpoint with -resume -checkpoint %s", *checkpoint)
			}
			fmt.Fprintln(os.Stderr)
			os.Exit(3)
		}
		fail(err)
	}
	signal.Stop(sigCh)

	for _, d := range res.Degradations {
		fmt.Printf("solver degradation: %s\n", d)
	}
	if res.Interrupted {
		fmt.Printf("\ninterrupted after %d Newton iterations\n", res.NewtonIters)
		if *checkpoint != "" && res.CheckpointWriteError == "" {
			fmt.Printf("state saved; resume with: -resume -checkpoint %s\n", *checkpoint)
		}
		if res.CheckpointWriteError != "" {
			fmt.Fprintf(os.Stderr, "regsolve: checkpoint write failed: %s\n", res.CheckpointWriteError)
		}
		os.Exit(2)
	}
	if res.CheckpointWriteError != "" {
		fmt.Fprintf(os.Stderr, "regsolve: warning: checkpoint write failed: %s\n", res.CheckpointWriteError)
	}
	if res.Failed {
		fmt.Fprintf(os.Stderr, "regsolve: solver failed: %s (returning last good iterate)\n", res.FailReason)
		os.Exit(4)
	}

	fmt.Printf("\nconverged:        %v (%d Newton iterations, %d Hessian matvecs)\n",
		res.Converged, res.NewtonIters, res.HessianMatvecs)
	fmt.Printf("misfit:           %.6e -> %.6e (%.2f%%)\n",
		res.MisfitInit, res.MisfitFinal, 100*res.MisfitFinal/res.MisfitInit)
	fmt.Printf("gradient norm:    %.6e -> %.6e\n", res.GnormInit, res.GnormFinal)
	fmt.Printf("det(grad y1):     min %.4f, max %.4f, mean %.4f", res.DetMin, res.DetMax, res.DetMean)
	if res.DetMin > 0 {
		fmt.Printf("  [diffeomorphic]\n")
	} else {
		fmt.Printf("  [NOT diffeomorphic]\n")
	}
	ph := res.Phases
	fmt.Printf("time to solution: %.3fs (fft comm %.4fs, fft exec %.4fs, interp comm %.4fs, interp exec %.4fs)\n",
		ph.TimeToSolution, ph.FFTComm, ph.FFTExec, ph.InterpComm, ph.InterpExec)
	fmt.Printf("work:             %d 3D FFTs, %d interpolation sweeps\n", res.FFTs, res.InterpSweeps)

	if *out != "" {
		if err := writeResults(*out, res, tmpl, ref); err != nil {
			fail(err)
		}
		fmt.Printf("results written to %s\n", *out)
	}
}

func loadRaw(path string, n1, n2, n3 int) (diffreg.Volume, error) {
	if path == "" {
		return diffreg.Volume{}, fmt.Errorf("missing volume path (use -template/-reference)")
	}
	g, err := grid.New(n1, n2, n3)
	if err != nil {
		return diffreg.Volume{}, err
	}
	data, err := imaging.ReadMHDRaw(path, g)
	if err != nil {
		return diffreg.Volume{}, err
	}
	return diffreg.Volume{N: [3]int{n1, n2, n3}, Data: data}, nil
}

func writeResults(dir string, res *diffreg.Result, tmpl, ref diffreg.Volume) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	g, err := grid.New(tmpl.N[0], tmpl.N[1], tmpl.N[2])
	if err != nil {
		return err
	}
	vols := map[string][]float64{
		"warped":  res.Warped.Data,
		"detgrad": res.DetGrad.Data,
	}
	for name, data := range vols {
		if err := imaging.WriteMHD(filepath.Join(dir, name+".mhd"), g, data); err != nil {
			return err
		}
		if err := imaging.WritePGMSlice(filepath.Join(dir, name+".pgm"), g, data, 0, g.N[0]/2); err != nil {
			return err
		}
	}
	// Residual images before and after, as in the paper's figures.
	before := make([]float64, len(ref.Data))
	after := make([]float64, len(ref.Data))
	for i := range ref.Data {
		before[i] = abs(tmpl.Data[i] - ref.Data[i])
		after[i] = abs(res.Warped.Data[i] - ref.Data[i])
	}
	if err := imaging.WritePGMSlice(filepath.Join(dir, "residual_before.pgm"), g, before, 0, g.N[0]/2); err != nil {
		return err
	}
	return imaging.WritePGMSlice(filepath.Join(dir, "residual_after.pgm"), g, after, 0, g.N[0]/2)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "regsolve:", err)
	os.Exit(1)
}
