package spectral

import "diffreg/internal/field"

// Job-fusion entry points: the batch dimension of the pencil transforms
// grows from "fields of one job" (3 components) to "fields × jobs"
// (3·B components) riding the same interleaved wire format, so a fused
// batch of B independent diagonal applications still costs exactly 2
// all-to-alls per transpose stage — the PR 3 invariant, now amortized
// across jobs. Per-field arithmetic is untouched: each job's three
// components pass through the identical per-line kernels and the
// identical symbol expression as the solo DiagVector, so every job's
// result is bit-identical to a solo run.

// ensureBatchWS grows the fused spectra/header workspace to b jobs.
func (o *Ops) ensureBatchWS(b int) {
	need := 3 * b
	if len(o.bspec) >= need {
		return
	}
	total := o.Plan.SpecLocalTotal()
	for len(o.bspec) < need {
		o.bspec = append(o.bspec, make([]complex128, total))
	}
	o.bhdrR = make([][]float64, need)
	o.bhdrC = make([][]complex128, need)
}

// WarmBatch pre-sizes the fused workspace (and the plan's transpose
// arena) for b-job vector batches so a warm fused solve allocates and
// grows nothing.
func (o *Ops) WarmBatch(b int) {
	o.ensureBatchWS(b)
	o.Plan.WarmBatch(3 * b)
}

// DiagVectorBatch applies one diagonal operator per job to B vector
// fields in a single fused transform pass: all 3·B components share the
// two batched pencil transforms (2 all-to-alls per transpose stage
// total), then each job's spectrum is scaled by its own symbol fs[i]
// with exactly the solo DiagVector expression. outs[i] receives job i's
// result and must be a fresh vector of identical geometry (it may live
// on a different communicator's pencil — only its storage is written).
func (o *Ops) DiagVectorBatch(vs, outs []*field.Vector, fs []func(k1, k2, k3 int) float64) {
	b := len(vs)
	if len(outs) != b || len(fs) != b {
		panic("spectral: DiagVectorBatch slice lengths disagree")
	}
	if b == 0 {
		return
	}
	o.ensureBatchWS(b)
	need := 3 * b
	for i := 0; i < b; i++ {
		for d := 0; d < 3; d++ {
			o.bhdrR[3*i+d] = vs[i].C[d].Data
			o.bhdrC[3*i+d] = o.bspec[3*i+d]
		}
	}
	must(o.Plan.ForwardBatchInto(o.bhdrR[:need], o.bhdrC[:need]))
	for i := 0; i < b; i++ {
		s0, s1, s2 := o.bspec[3*i], o.bspec[3*i+1], o.bspec[3*i+2]
		f := fs[i]
		o.Plan.EachSpecPar(func(idx, k1, k2, k3 int) {
			cf := complex(f(k1, k2, k3), 0)
			s0[idx] *= cf
			s1[idx] *= cf
			s2[idx] *= cf
		})
	}
	for i := 0; i < b; i++ {
		for d := 0; d < 3; d++ {
			o.bhdrC[3*i+d] = o.bspec[3*i+d]
			o.bhdrR[3*i+d] = outs[i].C[d].Data
		}
	}
	must(o.Plan.InverseBatchInto(o.bhdrC[:need], o.bhdrR[:need]))
}
