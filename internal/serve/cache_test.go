package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"diffreg/internal/pfft"
	"diffreg/internal/spectral"
)

// dummyOps returns tasks distinct placeholder operator sets. The cache
// never dereferences the pointers, so identity-only stand-ins are enough
// for the bookkeeping tests.
func dummyOps(tasks int) []*spectral.Ops {
	ops := make([]*spectral.Ops, tasks)
	for i := range ops {
		ops[i] = &spectral.Ops{}
	}
	return ops
}

// install puts a complete donation for key (n, tasks) into the cache via
// the public miss-lease path and returns the donated sets.
func install(t *testing.T, pc *PlanCache, n [3]int, tasks int) []*spectral.Ops {
	t.Helper()
	lease := pc.Acquire(n, tasks, "float64", 1).(*planLease)
	if lease.Hit() {
		t.Fatalf("expected a miss for %v/%d", n, tasks)
	}
	ops := dummyOps(tasks)
	for r, o := range ops {
		lease.Put(r, o)
	}
	lease.Release()
	return ops
}

func TestPlanCacheMissThenHit(t *testing.T) {
	pc := NewPlanCache(4)
	n := [3]int{16, 16, 16}
	donated := install(t, pc, n, 4)

	lease := pc.Acquire(n, 4, "float64", 1).(*planLease)
	if !lease.Hit() {
		t.Fatalf("second acquire of the same key should hit: %+v", pc.Stats())
	}
	for r := 0; r < 4; r++ {
		if lease.Ops(r) != donated[r] {
			t.Fatalf("rank %d: hit returned a different operator set than was donated", r)
		}
	}
	lease.Release()

	st := pc.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.InUse != 0 {
		t.Fatalf("stats after miss+hit: %+v", st)
	}
}

func TestPlanCacheKeySeparatesShapeAndTasks(t *testing.T) {
	pc := NewPlanCache(8)
	install(t, pc, [3]int{16, 16, 16}, 4)

	for _, probe := range []struct {
		n     [3]int
		tasks int
	}{
		{[3]int{16, 16, 16}, 2}, // same grid, different world size
		{[3]int{20, 16, 16}, 4}, // different grid, same world size
	} {
		if l := pc.Acquire(probe.n, probe.tasks, "float64", 1).(*planLease); l.Hit() {
			t.Fatalf("acquire %v/%d must miss: key collision", probe.n, probe.tasks)
		} else {
			l.Release()
		}
	}
}

// TestPlanCachePrecisionKeying is the regression test for the vestigial
// precision key: Acquire used to hardcode one precision string into the
// planKey, so a float32 job of the same (n, tasks) shape would check out an
// entry whose workspace arena was built for the float64 wire format. The
// two precisions must be distinct cache keys, and the empty string must
// normalize onto the float64 default rather than forming a third key.
func TestPlanCachePrecisionKeying(t *testing.T) {
	pc := NewPlanCache(8)
	n := [3]int{16, 16, 16}
	wide := install(t, pc, n, 4) // installs under "float64"

	// Same shape at float32 must miss — this fails on the unfixed path,
	// which would hand over the float64 entry.
	narrowLease := pc.Acquire(n, 4, "float32", 1).(*planLease)
	if narrowLease.Hit() {
		t.Fatal("float32 acquire hit a float64 entry: precision is not part of the effective key")
	}
	narrow := dummyOps(4)
	for r, o := range narrow {
		narrowLease.Put(r, o)
	}
	narrowLease.Release()

	// Both precisions now resident: each acquire gets its own entry back.
	for _, tc := range []struct {
		precision string
		want      []*spectral.Ops
	}{
		{"float32", narrow},
		{"float64", wide},
		{"", wide}, // empty normalizes to the float64 default
	} {
		l := pc.Acquire(n, 4, tc.precision, 1).(*planLease)
		if !l.Hit() {
			t.Fatalf("precision %q: expected hit, stats %+v", tc.precision, pc.Stats())
		}
		for r := 0; r < 4; r++ {
			if l.Ops(r) != tc.want[r] {
				t.Fatalf("precision %q rank %d: wrong entry checked out", tc.precision, r)
			}
		}
		l.Release()
	}
	if st := pc.Stats(); st.Entries != 2 {
		t.Fatalf("expected one entry per precision: %+v", st)
	}
}

// TestPlanCacheBatchWidthKeying is the fused-checkout regression test,
// the batch-axis sibling of TestPlanCachePrecisionKeying: the per-rank
// slot count (1 for solo jobs, B+1 for a fused batch of B) must be part
// of the effective key. A solo job that checked out a fused entry would
// drag a 3·(B+1)-field transpose arena around; a fused batch handed a
// solo entry would find no executor slot at all.
func TestPlanCacheBatchWidthKeying(t *testing.T) {
	pc := NewPlanCache(8)
	n := [3]int{16, 16, 16}
	solo := install(t, pc, n, 2) // installs under slots=1

	// Same (n, tasks, precision) at batch width 4+1 must miss.
	wideLease := pc.Acquire(n, 2, "float64", 5).(*planLease)
	if wideLease.Hit() {
		t.Fatal("slots=5 acquire hit a slots=1 entry: batch width is not part of the effective key")
	}
	// Donate all 2 ranks x 5 slots and check the round-trip.
	wide := make([][]*spectral.Ops, 2)
	for r := range wide {
		wide[r] = make([]*spectral.Ops, 5)
		for sl := range wide[r] {
			wide[r][sl] = &spectral.Ops{}
			wideLease.PutSlot(r, sl, wide[r][sl])
		}
	}
	wideLease.Release()

	// Both widths resident: each acquire returns its own entry, slot for
	// slot.
	wl := pc.Acquire(n, 2, "float64", 5).(*planLease)
	if !wl.Hit() {
		t.Fatalf("slots=5 reacquire should hit: %+v", pc.Stats())
	}
	for r := 0; r < 2; r++ {
		for sl := 0; sl < 5; sl++ {
			if wl.OpsSlot(r, sl) != wide[r][sl] {
				t.Fatalf("rank %d slot %d: wrong operator set", r, sl)
			}
		}
		if wl.OpsSlot(r, 5) != nil {
			t.Fatalf("rank %d: out-of-range slot must return nil", r)
		}
	}
	wl.Release()
	sl := pc.Acquire(n, 2, "float64", 1).(*planLease)
	if !sl.Hit() {
		t.Fatalf("slots=1 reacquire should hit: %+v", pc.Stats())
	}
	for r := 0; r < 2; r++ {
		if sl.Ops(r) != solo[r] {
			t.Fatalf("rank %d: solo acquire got a non-solo entry", r)
		}
	}
	sl.Release()
	if st := pc.Stats(); st.Entries != 2 {
		t.Fatalf("expected one entry per batch width: %+v", st)
	}

	// An incomplete fused donation (one slot never Put) is discarded.
	gap := pc.Acquire(n, 4, "float64", 3).(*planLease)
	for r := 0; r < 4; r++ {
		for slot := 0; slot < 3; slot++ {
			if r == 2 && slot == 1 {
				continue
			}
			gap.PutSlot(r, slot, &spectral.Ops{})
		}
	}
	gap.Release()
	if st := pc.Stats(); st.Entries != 2 {
		t.Fatalf("incomplete fused donation must be discarded: %+v", st)
	}
}

func TestPlanCacheCheckoutIsExclusive(t *testing.T) {
	pc := NewPlanCache(4)
	n := [3]int{16, 16, 16}
	install(t, pc, n, 2)

	first := pc.Acquire(n, 2, "float64", 1).(*planLease)
	if !first.Hit() {
		t.Fatal("first acquire should hit")
	}
	// The single entry is checked out: a concurrent job of the same shape
	// must miss (single-owner plans), then donate a second entry back.
	second := pc.Acquire(n, 2, "float64", 1).(*planLease)
	if second.Hit() {
		t.Fatal("second concurrent acquire must miss while the entry is checked out")
	}
	for r, o := range dummyOps(2) {
		second.Put(r, o)
	}
	second.Release()
	first.Release()

	if st := pc.Stats(); st.Entries != 2 {
		t.Fatalf("expected 2 entries after concurrent miss donation: %+v", st)
	}
}

func TestPlanCacheLRUEviction(t *testing.T) {
	pc := NewPlanCache(2)
	a, b, c := [3]int{8, 8, 8}, [3]int{12, 12, 12}, [3]int{16, 16, 16}
	install(t, pc, a, 1)
	install(t, pc, b, 1)
	// Touch a so b becomes the LRU entry.
	l := pc.Acquire(a, 1, "float64", 1).(*planLease)
	if !l.Hit() {
		t.Fatal("a should hit")
	}
	l.Release()
	// Installing c overflows capacity 2 and must evict b, not a.
	install(t, pc, c, 1)

	st := pc.Stats()
	if st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("expected one eviction at capacity 2: %+v", st)
	}
	if l := pc.Acquire(b, 1, "float64", 1).(*planLease); l.Hit() {
		t.Fatal("LRU entry b should have been evicted")
	} else {
		l.Release()
	}
	for _, n := range [][3]int{a, c} {
		l := pc.Acquire(n, 1, "float64", 1).(*planLease)
		if !l.Hit() {
			t.Fatalf("entry %v should have survived eviction", n)
		}
		l.Release()
	}
}

func TestPlanCacheRefcountPinsInUseEntry(t *testing.T) {
	pc := NewPlanCache(1)
	pinned := [3]int{8, 8, 8}
	install(t, pc, pinned, 1)

	lease := pc.Acquire(pinned, 1, "float64", 1).(*planLease)
	if !lease.Hit() {
		t.Fatal("expected hit on the pinned entry")
	}
	if st := pc.Stats(); st.InUse != 1 {
		t.Fatalf("entry should be in use: %+v", st)
	}
	// Overflow the capacity-1 cache while the entry is checked out. The
	// pinned entry must survive; the newcomers are evicted instead.
	install(t, pc, [3]int{12, 12, 12}, 1)
	install(t, pc, [3]int{16, 16, 16}, 1)
	lease.Release()

	got := pc.Acquire(pinned, 1, "float64", 1).(*planLease)
	if !got.Hit() {
		t.Fatalf("pinned entry was evicted while checked out: %+v", pc.Stats())
	}
	got.Release()
}

func TestPlanCacheIncompleteDonationDropped(t *testing.T) {
	pc := NewPlanCache(4)
	n := [3]int{16, 16, 16}
	lease := pc.Acquire(n, 4, "float64", 1).(*planLease)
	lease.Put(0, &spectral.Ops{}) // ranks 1..3 never donate (failed job)
	lease.Put(2, &spectral.Ops{})
	lease.Release()

	if st := pc.Stats(); st.Entries != 0 {
		t.Fatalf("incomplete donation must be discarded: %+v", st)
	}
	lease.Release() // double release is a no-op
	if st := pc.Stats(); st.Misses != 1 {
		t.Fatalf("double release must not double-count: %+v", st)
	}
}

func TestPlanCacheZeroCapacityStaysCold(t *testing.T) {
	pc := NewPlanCache(0)
	n := [3]int{8, 8, 8}
	install(t, pc, n, 1)
	if l := pc.Acquire(n, 1, "float64", 1).(*planLease); l.Hit() {
		t.Fatal("capacity-0 cache must never hit")
	} else {
		l.Release()
	}
	if st := pc.Stats(); st.Entries != 0 || st.Hits != 0 || st.Misses != 2 {
		t.Fatalf("capacity-0 stats: %+v", st)
	}
}

// TestServerWarmCacheZeroPfftAllocs is the PR 3 allocation gate extended
// through the server path: once the cache is warm, a 32^3 job served over
// HTTP must not construct any pfft plan nor grow any workspace arena —
// the package-level build/grow counters stay flat across warm jobs.
func TestServerWarmCacheZeroPfftAllocs(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 8})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	spec := JobSpec{Generator: "synthetic", N: [3]int{32, 32, 32}, Tasks: 2,
		TimeSteps: 2, MaxNewtonIters: 1, GradTol: 1e-12}
	run := func() *JobResult {
		t.Helper()
		body, _ := json.Marshal(spec)
		resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var acc struct {
			ID string `json:"id"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit: %d", resp.StatusCode)
		}
		job, ok := srv.Job(acc.ID)
		if !ok {
			t.Fatalf("job %s not tracked", acc.ID)
		}
		select {
		case <-job.Done():
		case <-time.After(2 * time.Minute):
			t.Fatal("job hung")
		}
		if st := job.Status(); st.State != JobDone {
			t.Fatalf("job %s: %s (%s)", acc.ID, st.State, st.Error)
		}
		return job.Result()
	}

	if cold := run(); cold.CacheHit {
		t.Fatal("first job must be a cache miss")
	}

	for i := 0; i < 3; i++ {
		builds, grows := pfft.PlanBuilds(), pfft.ArenaGrows()
		res := run()
		if !res.CacheHit {
			t.Fatalf("warm job %d missed the cache: %+v", i, srv.Cache().Stats())
		}
		if db, dg := pfft.PlanBuilds()-builds, pfft.ArenaGrows()-grows; db != 0 || dg != 0 {
			t.Fatalf("warm job %d: %d plan builds, %d arena grows (want 0, 0)", i, db, dg)
		}
	}
	if st := srv.Cache().Stats(); st.Hits < 3 {
		t.Fatalf("expected >= 3 cache hits: %+v", st)
	}
}

// TestServerNoCacheOptOut checks that no_cache jobs bypass the plan cache
// entirely: no hits consumed, no entries donated.
func TestServerNoCacheOptOut(t *testing.T) {
	srv := New(Config{Workers: 1})
	defer srv.Close()
	spec := JobSpec{Generator: "synthetic", N: [3]int{16, 16, 16}, Tasks: 1,
		TimeSteps: 2, MaxNewtonIters: 1, NoCache: true}
	for i := 0; i < 2; i++ {
		job, err := srv.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		job.Wait()
		if st := job.Status(); st.State != JobDone {
			t.Fatalf("job %d: %s (%s)", i, st.State, st.Error)
		}
		if job.Result().CacheHit {
			t.Fatalf("no_cache job %d reported a cache hit", i)
		}
	}
	if st := srv.Cache().Stats(); st.Hits != 0 || st.Misses != 0 || st.Entries != 0 {
		t.Fatalf("no_cache jobs must not touch the cache: %+v", st)
	}
}

func TestCacheStatsJSONShape(t *testing.T) {
	b, err := json.Marshal(CacheStats{Hits: 1, Misses: 2, Evictions: 3, Entries: 4, InUse: 5, Capacity: 6})
	if err != nil {
		t.Fatal(err)
	}
	want := `{"hits":1,"misses":2,"evictions":3,"entries":4,"in_use":5,"capacity":6}`
	if got := string(bytes.TrimSpace(b)); got != want {
		t.Fatalf("cache stats JSON drifted:\n got %s\nwant %s", got, want)
	}
}
