package semilag

import (
	"fmt"
	"math"
	"sort"
	"time"

	"diffreg/internal/field"
	"diffreg/internal/grid"
	"diffreg/internal/interp"
	"diffreg/internal/mpi"
	"diffreg/internal/par"
	"diffreg/internal/prec"
)

// BadPointError reports a non-finite semi-Lagrangian departure point —
// the footprint of a corrupted velocity field. It is raised through
// mpi.Raise, so it surfaces from mpi.Run wrapped and matchable with
// errors.As, and the world aborts instead of indexing out of the ghost
// layer or hanging peers in the scatter exchange.
type BadPointError struct {
	Rank  int        // world rank that owned the query point
	Index int        // local query point index
	Coord [3]float64 // offending coordinates, in global grid-index space
}

// Error implements error.
func (e *BadPointError) Error() string {
	return fmt.Sprintf("semilag: non-finite departure point %d on rank %d: (%g, %g, %g) — corrupted velocity?",
		e.Index, e.Rank, e.Coord[0], e.Coord[1], e.Coord[2])
}

// interpGrain is the pool chunk granularity for tricubic point evaluation:
// one item is a 64-coefficient stencil (~600 flops), so a few hundred
// points per chunk amortize the pool overhead while preserving the sorted
// streaming order inside each chunk.
const interpGrain = 256

// Plan is the reusable communication plan of Algorithm 1: the "scatter
// phase" has already been performed, so each rank knows which of its query
// points are evaluated remotely and which foreign points it must evaluate
// locally. A plan is built once per velocity field (forward and adjoint
// direction) per Newton iteration and then reused for every transported
// quantity and time step.
type Plan struct {
	Pe    *grid.Pencil
	Ghost *Ghost
	NQ    int // number of local query points

	// precision selects the evaluation path: at prec.F32 the padded field,
	// the tricubic gather, and the value-return exchange run in float32
	// (see narrow.go). Coordinates and the communication plan stay float64.
	precision prec.Precision

	sendIdx [][]int32   // per dest rank: local output slot of each query
	recvPts [][]float64 // per source rank: packed (x1,x2,x3) to evaluate
	// recvPts is stored sorted by base cell so the 64-value tricubic
	// stencil streams through memory — the cache-blocking optimization the
	// paper suggests for the memory-bound interpolation (§III-C2).
	// origIdx[r][k] maps the k-th (sorted) point back to its arrival
	// position, which is the slot its value must occupy on the wire.
	origIdx [][]int32

	// OffRank counts query points owned by other ranks (Fig. 3 of the
	// paper illustrates exactly these points).
	OffRank int
	// Evals counts local interpolant evaluations performed through this
	// plan, for the performance model.
	Evals int64

	// gate, when set, offers each InterpMany to a cross-job batch
	// scheduler before running the solo exchange (see batch.go).
	gate Gate

	// Plan-owned scratch for the hot interpolation path: grown lazily and
	// reused across calls, so a warmed-up plan interpolates without heap
	// allocation (receive buffers excepted — the MPI layer hands those
	// back). The outs buffers back the slices InterpMany returns.
	padScr    []float64
	padScr32  []float32
	blkScr    []float64
	blkScr32  []float32
	valsScr   [][]float64
	valsScr32 [][]float32
	outsScr   [][]float64
	fieldsScr [][]float64

	// sweep + the pre-bound pooled closures (pfft's stored-closure
	// pattern): the chunked tricubic sweep reads its arguments from the
	// plan so the hot loop submits zero escaping closures per call.
	sweep     sweepState
	sweepFn   func(c, lo, hi int)
	sweepFn32 func(c, lo, hi int)
}

// sweepState carries the per-(field, source-rank) arguments of the pooled
// tricubic sweep.
type sweepState struct {
	padded   []float64
	padded32 []float32
	pts      []float64
	out      []float64
	out32    []float32
	orig     []int32
	pd       [3]int
}

// sweep64Fn returns the pre-bound float64 chunk worker.
func (pl *Plan) sweep64Fn() func(c, lo, hi int) {
	if pl.sweepFn == nil {
		pl.sweepFn = func(_, lo, hi int) {
			s := &pl.sweep
			for k := lo; k < hi; k++ {
				s.out[s.orig[k]] = evalPadded(s.padded, s.pd, pl.Pe, s.pts[3*k], s.pts[3*k+1], s.pts[3*k+2])
			}
		}
	}
	return pl.sweepFn
}

// sweep32Fn returns the pre-bound float32 chunk worker.
func (pl *Plan) sweep32Fn() func(c, lo, hi int) {
	if pl.sweepFn32 == nil {
		pl.sweepFn32 = func(_, lo, hi int) {
			s := &pl.sweep
			evalBlock32(s.padded32, s.pd, pl.Pe, s.pts, lo, hi, s.out32, s.orig)
		}
	}
	return pl.sweepFn32
}

// padFor returns the plan's padded-field scratch.
func (pl *Plan) padFor() []float64 {
	if n := pl.Ghost.PaddedLen(); len(pl.padScr) < n {
		pl.padScr = make([]float64, n)
	}
	return pl.padScr
}

// pad32For returns the plan's float32 padded-field scratch.
func (pl *Plan) pad32For() []float32 {
	if n := pl.Ghost.PaddedLen(); len(pl.padScr32) < n {
		pl.padScr32 = make([]float32, n)
	}
	return pl.padScr32
}

// blkFor returns the plan's halo staging scratch.
func (pl *Plan) blkFor() []float64 {
	if n := pl.Ghost.MaxBlockLen(); len(pl.blkScr) < n {
		pl.blkScr = make([]float64, n)
	}
	return pl.blkScr
}

// blk32For returns the plan's float32 halo staging scratch.
func (pl *Plan) blk32For() []float32 {
	if n := pl.Ghost.MaxBlockLen(); len(pl.blkScr32) < n {
		pl.blkScr32 = make([]float32, n)
	}
	return pl.blkScr32
}

// valsFor returns the per-destination-rank value buffers sized for nf
// fields.
func (pl *Plan) valsFor(nf int) [][]float64 {
	if pl.valsScr == nil {
		pl.valsScr = make([][]float64, len(pl.recvPts))
	}
	for r := range pl.valsScr {
		need := nf * (len(pl.recvPts[r]) / 3)
		if cap(pl.valsScr[r]) < need {
			pl.valsScr[r] = make([]float64, need)
		}
		pl.valsScr[r] = pl.valsScr[r][:need]
	}
	return pl.valsScr
}

// vals32For is valsFor on the narrow path.
func (pl *Plan) vals32For(nf int) [][]float32 {
	if pl.valsScr32 == nil {
		pl.valsScr32 = make([][]float32, len(pl.recvPts))
	}
	for r := range pl.valsScr32 {
		need := nf * (len(pl.recvPts[r]) / 3)
		if cap(pl.valsScr32[r]) < need {
			pl.valsScr32[r] = make([]float32, need)
		}
		pl.valsScr32[r] = pl.valsScr32[r][:need]
	}
	return pl.valsScr32
}

// outsFor returns nf plan-owned output buffers of NQ elements each.
func (pl *Plan) outsFor(nf int) [][]float64 {
	for len(pl.outsScr) < nf {
		pl.outsScr = append(pl.outsScr, make([]float64, pl.NQ))
	}
	return pl.outsScr[:nf]
}

// NewPlan builds a plan for the given query points, expressed in global
// grid-index coordinates (one slice per dimension, equal lengths). Points
// may lie anywhere; they are wrapped periodically. Evaluation runs at the
// float64 reference precision.
func NewPlan(pe *grid.Pencil, pts [3][]float64) *Plan {
	return NewPlanPrec(pe, pts, prec.F64)
}

// NewPlanPrec is NewPlan with an explicit evaluation precision.
func NewPlanPrec(pe *grid.Pencil, pts [3][]float64, pr prec.Precision) *Plan {
	nq := len(pts[0])
	p := pe.Comm.Size()
	pl := &Plan{Pe: pe, Ghost: NewGhost(pe), NQ: nq, precision: pr}

	sendIdx := make([][]int32, p)
	sendPts := make([][]float64, p)
	n := pe.Grid.N
	for q := 0; q < nq; q++ {
		x1 := wrapCoord(pts[0][q], n[0])
		x2 := wrapCoord(pts[1][q], n[1])
		x3 := wrapCoord(pts[2][q], n[2])
		// A corrupted velocity (NaN/Inf after a comm fault or numerical
		// blow-up) produces non-finite departure points, which would index
		// outside the ghost layer downstream. Reject before any exchange;
		// the raise aborts the world so peer ranks already inside the
		// Alltoallv unwind instead of hanging.
		if !(x1 >= 0 && x1 < float64(n[0])) ||
			!(x2 >= 0 && x2 < float64(n[1])) ||
			!(x3 >= 0 && x3 < float64(n[2])) {
			mpi.Raise(&BadPointError{
				Rank:  pe.Comm.WorldRank(),
				Index: q,
				Coord: [3]float64{pts[0][q], pts[1][q], pts[2][q]},
			})
		}
		j1, _ := interp.SplitIndex(x1, n[0])
		j2, _ := interp.SplitIndex(x2, n[1])
		owner := pe.OwnerOf(j1, j2)
		sendIdx[owner] = append(sendIdx[owner], int32(q))
		sendPts[owner] = append(sendPts[owner], x1, x2, x3)
		if owner != pe.Comm.Rank() {
			pl.OffRank++
		}
	}
	old := pe.Comm.SetPhase(mpi.PhaseInterpComm)
	pl.recvPts = pe.Comm.AlltoallvFloat64(sendPts)
	pe.Comm.SetPhase(old)
	pl.sendIdx = sendIdx
	pl.buildOrder()
	return pl
}

// buildOrder sorts each incoming point list by base cell in the padded
// array layout and physically reorders the coordinates, so local
// evaluation streams through both the point list and the field.
func (pl *Plan) buildOrder() {
	pe := pl.Pe
	pd := pl.Ghost.PaddedDims()
	n := pe.Grid.N
	pl.origIdx = make([][]int32, len(pl.recvPts))
	for r, pts := range pl.recvPts {
		npts := len(pts) / 3
		keys := make([]int64, npts)
		ord := make([]int32, npts)
		par.For(npts, func(lo, hi int) {
			for q := lo; q < hi; q++ {
				i1, _ := interp.SplitIndex(pts[3*q], n[0])
				i2, _ := interp.SplitIndex(pts[3*q+1], n[1])
				i3, _ := interp.SplitIndex(pts[3*q+2], n[2])
				keys[q] = (int64(i1-pe.Lo[0])*int64(pd[1])+int64(i2-pe.Lo[1]))*int64(pd[2]) + int64(i3)
				ord[q] = int32(q)
			}
		})
		sort.Slice(ord, func(a, b int) bool { return keys[ord[a]] < keys[ord[b]] })
		sorted := make([]float64, len(pts))
		par.For(npts, func(lo, hi int) {
			for k := lo; k < hi; k++ {
				q := int(ord[k])
				copy(sorted[3*k:3*k+3], pts[3*q:3*q+3])
			}
		})
		pl.recvPts[r] = sorted
		pl.origIdx[r] = ord
	}
}

// wrapCoord maps a continuous coordinate into [0, n) in O(1). A non-finite
// input stays non-finite (math.Mod of NaN/Inf is NaN) and is rejected by
// the range validation in NewPlan — the old repeated-subtraction wrap
// looped forever on -Inf and effectively forever on huge finite values.
func wrapCoord(x float64, n int) float64 {
	fn := float64(n)
	x = math.Mod(x, fn)
	if x < 0 {
		x += fn
	}
	if x >= fn {
		// x was a tiny negative whose wrap rounded to fn exactly.
		x -= fn
	}
	return x
}

// InterpMany interpolates several scalar fields (given as local arrays with
// the pencil's dimensions) at the plan's query points. The returned slices
// are ordered like the original query points. All fields share one value
// return exchange; each field needs its own halo update.
//
// The returned slices are plan-owned scratch, valid until the next
// Interp/InterpMany call on this plan: callers that keep results across
// calls must copy them. With a gate installed (SetGate) the call is first
// offered to the cross-job batch scheduler; a declined offer falls back to
// the solo exchange below, bit-identically.
func (pl *Plan) InterpMany(fields ...[]float64) [][]float64 {
	if pl.gate != nil {
		// Stage the fields in plan scratch so the variadic argument slice
		// does not leak into the call struct — keeping ungated call sites
		// allocation-free.
		pl.fieldsScr = append(pl.fieldsScr[:0], fields...)
		call := BatchCall{Plan: pl, Fields: pl.fieldsScr}
		if pl.gate(&call) {
			return call.Outs
		}
	}
	if pl.precision == prec.F32 {
		return pl.interpMany32(fields)
	}
	return pl.interpMany64(fields)
}

// interpMany64 is the solo reference-precision exchange.
func (pl *Plan) interpMany64(fields [][]float64) [][]float64 {
	pe := pl.Pe
	p := pe.Comm.Size()
	nf := len(fields)
	// Evaluate every requested point against each padded field.
	vals := pl.valsFor(nf)
	padded := pl.padFor()
	blk := pl.blkFor()
	pd := pl.Ghost.PaddedDims()
	for fi, f := range fields {
		pe.Comm.CountInterp(int64(pl.NQ))
		pl.Ghost.PadInto(padded, f, blk)
		t0 := time.Now()
		for r := 0; r < p; r++ {
			pts := pl.recvPts[r]
			npts := len(pts) / 3
			// The sorted batches stream through the padded field; chunks of
			// the sorted order are independent (orig is a permutation, so the
			// scattered writes are disjoint) and run on the worker pool.
			pl.sweep = sweepState{
				padded: padded,
				pts:    pts,
				out:    vals[r][fi*npts : (fi+1)*npts],
				orig:   pl.origIdx[r],
				pd:     pd,
			}
			par.ForChunks(npts, interpGrain, pl.sweep64Fn())
			pl.Evals += int64(npts)
		}
		pe.Comm.AddExec(mpi.PhaseInterpExec, time.Since(t0).Seconds())
	}
	// Return the values to the ranks that asked for them. A size-1
	// communicator owns every value already, so the (allocating) self-copy
	// collective is skipped.
	back := vals
	if p > 1 {
		old := pe.Comm.SetPhase(mpi.PhaseInterpComm)
		back = pe.Comm.AlltoallvFloat64(vals)
		pe.Comm.SetPhase(old)
	}

	outs := pl.outsFor(nf)
	for r := 0; r < p; r++ {
		idx := pl.sendIdx[r]
		npts := len(idx)
		for fi := 0; fi < nf; fi++ {
			seg := back[r][fi*npts : (fi+1)*npts]
			for j, slot := range idx {
				outs[fi][slot] = seg[j]
			}
		}
	}
	return outs
}

// Interp interpolates a single scalar field at the plan's query points.
// Like InterpMany, the returned slice is plan-owned scratch, valid until
// the next Interp/InterpMany call on this plan.
func (pl *Plan) Interp(f []float64) []float64 { return pl.InterpMany(f)[0] }

// evalPadded evaluates the tricubic interpolant on the halo-padded local
// array. x1 and x2 are global wrapped coordinates whose base cell is owned
// by this rank; x3 wraps locally since dimension 2 is complete.
func evalPadded(f []float64, pd [3]int, pe *grid.Pencil, x1, x2, x3 float64) float64 {
	n3 := pe.Grid.N[2]
	i1, t1 := interp.SplitIndex(x1, pe.Grid.N[0])
	i2, t2 := interp.SplitIndex(x2, pe.Grid.N[1])
	i3, t3 := interp.SplitIndex(x3, n3)
	li1 := i1 - pe.Lo[0] + GhostWidth
	li2 := i2 - pe.Lo[1] + GhostWidth
	w1 := interp.Weights(t1)
	w2 := interp.Weights(t2)
	w3 := interp.Weights(t3)
	var idx3 [4]int
	for c := 0; c < 4; c++ {
		j := i3 + c - 1
		if j < 0 {
			j += n3
		} else if j >= n3 {
			j -= n3
		}
		idx3[c] = j
	}
	sum := 0.0
	for a := 0; a < 4; a++ {
		base1 := (li1 + a - 1) * pd[1]
		for b := 0; b < 4; b++ {
			base2 := (base1 + li2 + b - 1) * pd[2]
			wab := w1[a] * w2[b]
			line := w3[0]*f[base2+idx3[0]] + w3[1]*f[base2+idx3[1]] +
				w3[2]*f[base2+idx3[2]] + w3[3]*f[base2+idx3[3]]
			sum += wab * line
		}
	}
	return sum
}

// Departure computes the RK2 departure points of eq. (6) for every local
// grid point: X* = x - dt*v(x), then X = x - dt/2 (v(x) + v(X*)). The
// velocity is in physical units on the domain [0, 2*pi)^3; the returned
// coordinates are in global grid-index space, ready for NewPlan.
func Departure(pe *grid.Pencil, v *field.Vector, dt float64) [3][]float64 {
	return DeparturePrec(pe, v, dt, prec.F64)
}

// DeparturePrec is Departure evaluating the intermediate velocity
// interpolation at the given precision. The coordinate arithmetic itself
// stays float64 at either precision.
func DeparturePrec(pe *grid.Pencil, v *field.Vector, dt float64, pr prec.Precision) [3][]float64 {
	return DeparturePrecGate(pe, v, dt, pr, nil)
}

// DeparturePrecGate is DeparturePrec with a batch gate installed on the
// intermediate star-point plan, so the RK2 velocity interpolation can join
// a cross-job fused exchange.
func DeparturePrecGate(pe *grid.Pencil, v *field.Vector, dt float64, pr prec.Precision, gate Gate) [3][]float64 {
	n := pe.LocalTotal()
	h := [3]float64{pe.Grid.Spacing(0), pe.Grid.Spacing(1), pe.Grid.Spacing(2)}
	var star [3][]float64
	for d := 0; d < 3; d++ {
		star[d] = make([]float64, n)
	}
	pe.EachLocalPar(func(i1, i2, i3, idx int) {
		star[0][idx] = float64(pe.Lo[0]+i1) - dt*v.C[0].Data[idx]/h[0]
		star[1][idx] = float64(pe.Lo[1]+i2) - dt*v.C[1].Data[idx]/h[1]
		star[2][idx] = float64(pe.Lo[2]+i3) - dt*v.C[2].Data[idx]/h[2]
	})
	planStar := NewPlanPrec(pe, star, pr)
	planStar.SetGate(gate)
	vStar := planStar.InterpMany(v.C[0].Data, v.C[1].Data, v.C[2].Data)
	var dep [3][]float64
	for d := 0; d < 3; d++ {
		dep[d] = make([]float64, n)
	}
	pe.EachLocalPar(func(i1, i2, i3, idx int) {
		dep[0][idx] = float64(pe.Lo[0]+i1) - 0.5*dt*(v.C[0].Data[idx]+vStar[0][idx])/h[0]
		dep[1][idx] = float64(pe.Lo[1]+i2) - 0.5*dt*(v.C[1].Data[idx]+vStar[1][idx])/h[1]
		dep[2][idx] = float64(pe.Lo[2]+i3) - 0.5*dt*(v.C[2].Data[idx]+vStar[2][idx])/h[2]
	})
	return dep
}

// DeparturePlan builds the interpolation plan for the departure points of
// velocity v and time step dt — the paper's "interpolation planner".
func DeparturePlan(pe *grid.Pencil, v *field.Vector, dt float64) *Plan {
	return NewPlan(pe, Departure(pe, v, dt))
}
