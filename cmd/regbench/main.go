// Command regbench regenerates the tables and figures of the paper's
// evaluation section (§IV). Measured rows come from real solves at
// container-feasible grid sizes; cluster-scale rows come from the
// calibrated performance model (see DESIGN.md and EXPERIMENTS.md).
//
// Usage:
//
//	regbench -all                 # everything
//	regbench -table 1             # a single table (1-5)
//	regbench -figure 5            # a single figure (1-7; 6 and 7 together)
//	regbench -out results/        # also write PGM slice images
//	regbench -quick               # smaller measurement grids
//	regbench -perf                # spectral pipeline perf snapshot (JSON)
//	regbench -serve               # registration-as-a-service throughput (JSON)
//	regbench -mixed               # float64-vs-float32 hot path comparison (JSON)
//	regbench -batch               # multi-job fusion throughput (JSON)
package main

import (
	"flag"
	"fmt"
	"os"

	"diffreg/internal/fusebench"
	"diffreg/internal/mixbench"
	"diffreg/internal/paperbench"
	"diffreg/internal/servebench"
)

func main() {
	table := flag.Int("table", 0, "regenerate one table (1-5; 6 = preconditioner extension)")
	figure := flag.Int("figure", 0, "regenerate one figure (1-7)")
	all := flag.Bool("all", false, "regenerate every table and figure")
	out := flag.String("out", "", "directory for PGM slice images (omit to skip files)")
	quick := flag.Bool("quick", false, "use smaller measurement grids")
	perf := flag.Bool("perf", false, "print the spectral pipeline performance snapshot as JSON")
	serveFlag := flag.Bool("serve", false, "print the registration-as-a-service throughput snapshot as JSON")
	mixed := flag.Bool("mixed", false, "print the float64-vs-float32 hot path comparison as JSON")
	batch := flag.Bool("batch", false, "print the multi-job fusion throughput snapshot as JSON")
	flag.Parse()

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fail(err)
		}
	}
	if *perf {
		rep, err := paperbench.Perf()
		if err != nil {
			fail(err)
		}
		fmt.Println(rep.Text)
		return
	}
	if *serveFlag {
		rep, err := servebench.Serve(*quick)
		if err != nil {
			fail(err)
		}
		fmt.Println(rep.Text)
		return
	}
	if *mixed {
		rep, err := mixbench.PrecisionBench(*quick)
		if err != nil {
			fail(err)
		}
		fmt.Println(rep.Text)
		return
	}
	if *batch {
		rep, err := fusebench.Batch(*quick)
		if err != nil {
			fail(err)
		}
		fmt.Println(rep.Text)
		return
	}
	if !*all && *table == 0 && *figure == 0 {
		flag.Usage()
		os.Exit(2)
	}

	run := func(id string, fn func() (paperbench.Report, error)) {
		rep, err := fn()
		if err != nil {
			fail(fmt.Errorf("%s: %w", id, err))
		}
		fmt.Printf("==== %s ====\n%s\n", rep.Title, rep.Text)
	}

	tables := map[int]func() (paperbench.Report, error){
		1: func() (paperbench.Report, error) { return paperbench.Table1(*quick) },
		2: paperbench.Table2,
		3: func() (paperbench.Report, error) { return paperbench.Table3(*quick) },
		4: func() (paperbench.Report, error) { return paperbench.Table4(*quick) },
		5: func() (paperbench.Report, error) { return paperbench.Table5(*quick) },
		// Table 6 extends the paper: preconditioner comparison (see
		// EXPERIMENTS.md).
		6: func() (paperbench.Report, error) { return paperbench.Table5Ext(*quick) },
	}
	figures := map[int]func() (paperbench.Report, error){
		1: func() (paperbench.Report, error) { return paperbench.Figure1(*out) },
		2: paperbench.Figure2,
		3: paperbench.Figure3,
		4: paperbench.Figure4,
		5: func() (paperbench.Report, error) { return paperbench.Figure5(*out) },
		6: func() (paperbench.Report, error) { return paperbench.Figure67(*out, *quick) },
		7: func() (paperbench.Report, error) { return paperbench.Figure67(*out, *quick) },
	}

	if *all {
		for i := 1; i <= 6; i++ {
			run(fmt.Sprintf("table %d", i), tables[i])
		}
		for _, i := range []int{1, 2, 3, 4, 5, 6} {
			run(fmt.Sprintf("figure %d", i), figures[i])
		}
		return
	}
	if *table != 0 {
		fn, ok := tables[*table]
		if !ok {
			fail(fmt.Errorf("no table %d (1-6)", *table))
		}
		run(fmt.Sprintf("table %d", *table), fn)
	}
	if *figure != 0 {
		fn, ok := figures[*figure]
		if !ok {
			fail(fmt.Errorf("no figure %d (1-7)", *figure))
		}
		run(fmt.Sprintf("figure %d", *figure), fn)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "regbench:", err)
	os.Exit(1)
}
