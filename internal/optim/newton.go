package optim

import (
	"fmt"
	"math"
)

// Forcing selects the Eisenstat-Walker forcing sequence that sets the
// Krylov tolerance of each inexact Newton step.
type Forcing int

const (
	// ForcingQuadratic is the paper's choice (§II-C): eta_k =
	// min(cap, sqrt(||g_k||/||g_0||)), which yields superlinear local
	// convergence while keeping early Krylov solves loose. It is the zero
	// value and the default.
	ForcingQuadratic Forcing = iota
	// ForcingLinear tightens the tolerance proportionally to the gradient
	// decay, eta_k = min(cap, ||g_k||/||g_0||). It over-solves early
	// systems (more Hessian matvecs for the same outer trajectory) and is
	// kept for the convergence-history regression tests.
	ForcingLinear
)

// Progress is the optimizer-state snapshot handed to OnIterate after each
// accepted step: everything a checkpoint needs besides the iterate itself.
type Progress struct {
	Iter       int // completed outer iterations (the iterate is v_Iter)
	JInit      float64
	MisfitInit float64
	GnormInit  float64
	History    []IterRecord
}

// ResumeState warm-starts a solve from checkpointed progress. The iterate
// itself is passed as v0; it is NOT re-projected (checkpointed iterates
// are already feasible), and the initial objective values are restored
// instead of re-measured, so forcing terms and convergence tests — and
// therefore the entire trajectory — are bit-identical to the
// uninterrupted solve.
type ResumeState struct {
	Iter       int // completed outer iterations at checkpoint time
	JInit      float64
	MisfitInit float64
	GnormInit  float64
	History    []IterRecord
}

// NewtonOptions controls the inexact (Gauss-)Newton-Krylov driver. The
// defaults mirror the paper's setup: relative gradient tolerance 1e-2,
// at most 50 outer iterations, quadratic forcing capped at 0.5.
type NewtonOptions struct {
	GradTol       float64 // stop when ||g|| <= GradTol * ||g0||
	AbsGradTol    float64 // additional absolute gradient floor
	MaxIters      int     // maximum Newton iterations
	MaxKrylov     int     // maximum PCG iterations per Newton step
	ForcingCap    float64 // upper bound for the forcing term
	Forcing       Forcing // forcing sequence (default quadratic)
	MaxLineSearch int     // maximum Armijo halvings
	ArmijoC1      float64 // sufficient decrease constant
	Log           func(format string, args ...any)

	// Stop is polled once at the top of every outer iteration; when it
	// returns true the solve stops with Result.Interrupted set. On a
	// distributed problem the callback MUST be collective (all ranks must
	// agree), e.g. an allreduce of a local flag.
	Stop func() bool
	// OnIterate runs after every accepted step with the new iterate (the
	// concrete vector, typed any to keep the options non-generic) and the
	// progress snapshot; checkpointing hooks in here. On a distributed
	// problem it runs on all ranks at the same iterations, so collective
	// operations are safe inside.
	OnIterate func(v any, prog Progress)
	// OnLevel runs at the start of each continuation level (schedule
	// index, beta value).
	OnLevel func(level int, beta float64)
	// Resume warm-starts the solve from checkpointed progress; see
	// ResumeState.
	Resume *ResumeState
	// MaxRewinds bounds how often a non-finite evaluation may rewind to
	// the last good iterate before the solve gives up (default 2).
	MaxRewinds int
}

// forcingEta evaluates the selected Eisenstat-Walker sequence.
func (o *NewtonOptions) forcingEta(gnorm, gnorm0 float64) float64 {
	r := gnorm / gnorm0
	if o.Forcing == ForcingQuadratic {
		r = math.Sqrt(r)
	}
	return math.Min(o.ForcingCap, r)
}

// DefaultNewtonOptions returns the paper's solver parameters (§IV-A3).
func DefaultNewtonOptions() NewtonOptions {
	return NewtonOptions{
		GradTol:       1e-2,
		AbsGradTol:    1e-12,
		MaxIters:      50,
		MaxKrylov:     200,
		ForcingCap:    0.5,
		MaxLineSearch: 20,
		ArmijoC1:      1e-4,
	}
}

// maxRewinds returns the effective rewind budget.
func (o *NewtonOptions) maxRewinds() int {
	if o.MaxRewinds > 0 {
		return o.MaxRewinds
	}
	return 2
}

// IterRecord captures one outer iteration for reporting.
type IterRecord struct {
	Iter      int
	J         float64
	Misfit    float64
	Gnorm     float64
	Forcing   float64
	CGIters   int
	Step      float64
	LineTrial int
}

// Result summarizes a Newton (or steepest descent) solve.
type Result[T Vec[T]] struct {
	V          T
	Iters      int
	JInit      float64
	JFinal     float64
	MisfitInit float64
	MisfitLast float64
	GnormInit  float64
	GnormLast  float64
	Converged  bool
	History    []IterRecord

	// Interrupted is set when Stop requested an early exit; V is the last
	// accepted iterate.
	Interrupted bool
	// Failed is set when the solve could not maintain a finite objective
	// state even after the escalation ladder (rewinds, steepest-descent
	// fallbacks); V still holds the last good iterate.
	Failed     bool
	FailReason string
	// Degradations records every guard that fired (PCG breakdowns,
	// direction fallbacks, rewinds), in order — the structured diagnostic
	// trail of a faulty run.
	Degradations []string
}

// degrade appends a structured degradation record.
func (r *Result[T]) degrade(format string, args ...any) {
	r.Degradations = append(r.Degradations, fmt.Sprintf(format, args...))
}

func (o *NewtonOptions) logf(format string, args ...any) {
	if o.Log != nil {
		o.Log(format, args...)
	}
}

// GaussNewton minimizes the registration objective with the paper's
// line-search globalized, preconditioned, inexact Newton-Krylov scheme.
// Whether the Hessian is the Gauss-Newton or the full Newton one is
// selected by the problem options. v0 is the initial guess (it is
// projected onto the divergence-free space for incompressible problems,
// unless the solve resumes from a checkpoint — those iterates are already
// feasible).
//
// The solve is guarded: a non-finite objective or gradient triggers the
// escalation ladder (rewind to the last good iterate and force one
// steepest-descent step; give up with Result.Failed after the rewind
// budget), a PCG breakdown falls back to the preconditioned gradient, and
// a failed line search on the Newton direction retries once with plain
// steepest descent. On a fault-free problem none of the guards fire and
// the trajectory is bit-identical to the unguarded driver.
func GaussNewton[T Vec[T]](p Objective[T], v0 T, opt NewtonOptions) *Result[T] {
	res := &Result[T]{}
	var v T
	start := 0
	if opt.Resume != nil {
		v = v0.Clone()
		start = opt.Resume.Iter
		res.JInit = opt.Resume.JInit
		res.MisfitInit = opt.Resume.MisfitInit
		res.GnormInit = opt.Resume.GnormInit
		res.History = append(res.History, opt.Resume.History...)
	} else {
		v = p.Project(v0.Clone())
	}
	lastGood := v
	rewinds := 0
	forceSD := false
	for iter := start; ; iter++ {
		if opt.Stop != nil && opt.Stop() {
			res.Interrupted = true
			res.Iters = iter
			res.V = v
			break
		}
		e := p.EvalGradient(v)
		if iter == start && opt.Resume == nil {
			res.JInit = e.J
			res.MisfitInit = e.Misfit
			res.GnormInit = e.Gnorm
		}
		if !finite(e.J) || !finite(e.Gnorm) {
			// Non-finite state: a corrupted transport solve or a blown-up
			// candidate slipped through. Rewind and degrade, or give up.
			if rewinds >= opt.maxRewinds() || iter == start {
				res.Failed = true
				res.FailReason = fmt.Sprintf("non-finite objective state at iteration %d (J=%v, ||g||=%v)", iter, e.J, e.Gnorm)
				res.degrade("iter %d: %s; returning last good iterate", iter, res.FailReason)
				res.Iters = iter
				res.V = lastGood
				break
			}
			rewinds++
			res.degrade("iter %d: non-finite state (J=%v, ||g||=%v); rewind %d to last good iterate, forcing steepest descent", iter, e.J, e.Gnorm, rewinds)
			opt.logf("newton %2d: non-finite state, rewinding (%d/%d)", iter, rewinds, opt.maxRewinds())
			v = lastGood
			forceSD = true
			iter--
			continue
		}
		res.JFinal = e.J
		res.MisfitLast = e.Misfit
		res.GnormLast = e.Gnorm
		res.Iters = iter
		res.V = v
		if e.Gnorm <= opt.GradTol*res.GnormInit || e.Gnorm <= opt.AbsGradTol {
			res.Converged = true
			break
		}
		if iter >= opt.MaxIters {
			break
		}

		// Eisenstat-Walker forcing (inexact Newton): the Krylov tolerance
		// tightens as the gradient decays.
		eta := opt.forcingEta(e.Gnorm, res.GnormInit)

		rhs := e.G.Clone()
		rhs.Scale(-1)
		var dir T
		var cg CGResult
		usedSD := false
		if forceSD {
			forceSD = false
			usedSD = true
			dir = rhs.Clone()
		} else {
			dir, cg = PCG(p.HessMatVec, p.ApplyPrec, rhs, eta, opt.MaxKrylov)
			if cg.Breakdown {
				res.degrade("iter %d: PCG breakdown after %d iterations (restarts=%d); falling back to preconditioned gradient", iter, cg.Iters, cg.Restarts)
				dir = p.ApplyPrec(rhs)
			}
		}
		slope := e.G.Dot(dir)
		if !(slope < 0) || (cg.Iters == 0 && cg.Indefinite) {
			// Not a descent direction (a truncated or corrupted solve);
			// fall back to the preconditioned gradient. The negated
			// comparison also reroutes a NaN slope.
			dir = p.ApplyPrec(rhs)
			slope = e.G.Dot(dir)
		}
		if !(slope < 0) {
			// The preconditioned gradient is itself not a descent direction
			// (an indefinite two-level or shifted preconditioner state): use
			// plain steepest descent, whose slope -||g||^2 is negative for
			// any nonzero gradient.
			dir = rhs.Clone()
			slope = e.G.Dot(dir)
		}
		if !(slope < 0) {
			// Only possible when g = 0, which the convergence test already
			// intercepts; bail out rather than backtrack on a flat model.
			break
		}

		alpha, trials, cand := armijo(p, v, dir, e.J, slope, opt)
		if alpha == 0 && !usedSD {
			// Escalation: the Newton direction found no acceptable step;
			// retry once with plain steepest descent before giving up.
			sd := rhs.Clone()
			sdSlope := e.G.Dot(sd)
			if sdSlope < 0 {
				res.degrade("iter %d: line search failed on the Newton direction; retrying with steepest descent", iter)
				dir = sd
				alpha, trials, cand = armijo(p, v, dir, e.J, sdSlope, opt)
			}
		}
		rec := IterRecord{
			Iter: iter, J: e.J, Misfit: e.Misfit, Gnorm: e.Gnorm,
			Forcing: eta, CGIters: cg.Iters, Step: alpha, LineTrial: trials,
		}
		res.History = append(res.History, rec)
		opt.logf("newton %2d: J=%.6e misfit=%.6e ||g||=%.3e eta=%.2e cg=%d alpha=%.3g",
			iter, e.J, e.Misfit, e.Gnorm, eta, cg.Iters, alpha)
		if alpha == 0 {
			// Line search failed: no further progress possible.
			break
		}
		// Adopt the accepted candidate object itself (not a recomputed
		// copy): the objective may have cached the candidate's transport
		// solve, and the next EvalGradient recognizes it by identity.
		lastGood = v
		v = cand
		if opt.OnIterate != nil {
			opt.OnIterate(v, Progress{
				Iter: iter + 1, JInit: res.JInit, MisfitInit: res.MisfitInit,
				GnormInit: res.GnormInit, History: res.History,
			})
		}
	}
	return res
}

// armijo backtracks from a full step until the sufficient decrease
// condition J(v + a d) <= J(v) + c1 a <g, d> holds. Every trial is
// projected onto the feasible space before evaluation, so accepted
// iterates cannot drift off the divergence-free subspace through
// accumulated axpy rounding (for unconstrained problems Project is the
// identity). Only finite objective values are accepted: a NaN candidate
// fails the comparison on its own, and a -Inf candidate (a poisoned eval)
// would otherwise satisfy any decrease condition. Returns the accepted
// step (0 on failure), the number of trials, and the accepted candidate
// (the zero value on failure).
func armijo[T Vec[T]](p Objective[T], v, dir T, j0, slope float64, opt NewtonOptions) (float64, int, T) {
	alpha := 1.0
	for trial := 1; trial <= opt.MaxLineSearch; trial++ {
		cand := v.Clone()
		cand.Axpy(alpha, dir)
		cand = p.Project(cand)
		if jc := p.Evaluate(cand).J; finite(jc) && jc <= j0+opt.ArmijoC1*alpha*slope {
			return alpha, trial, cand
		}
		alpha /= 2
	}
	var none T
	return 0, opt.MaxLineSearch, none
}

// SteepestDescent is the first-order baseline the paper contrasts against
// ("steepest descent methods only have a linear convergence rate"): the
// search direction is the preconditioned negative gradient. It honors the
// same Stop/OnIterate/Resume hooks and non-finite guards as GaussNewton
// (without the rewind ladder — a first-order step that blows up simply
// fails).
func SteepestDescent[T Vec[T]](p Objective[T], v0 T, opt NewtonOptions) *Result[T] {
	res := &Result[T]{}
	var v T
	start := 0
	if opt.Resume != nil {
		v = v0.Clone()
		start = opt.Resume.Iter
		res.JInit = opt.Resume.JInit
		res.MisfitInit = opt.Resume.MisfitInit
		res.GnormInit = opt.Resume.GnormInit
		res.History = append(res.History, opt.Resume.History...)
	} else {
		v = p.Project(v0.Clone())
	}
	for iter := start; ; iter++ {
		if opt.Stop != nil && opt.Stop() {
			res.Interrupted = true
			res.Iters = iter
			res.V = v
			break
		}
		e := p.EvalGradient(v)
		if iter == start && opt.Resume == nil {
			res.JInit, res.MisfitInit, res.GnormInit = e.J, e.Misfit, e.Gnorm
		}
		if !finite(e.J) || !finite(e.Gnorm) {
			res.Failed = true
			res.FailReason = fmt.Sprintf("non-finite objective state at iteration %d (J=%v, ||g||=%v)", iter, e.J, e.Gnorm)
			res.degrade("iter %d: %s", iter, res.FailReason)
			res.Iters = iter
			break
		}
		res.JFinal, res.MisfitLast, res.GnormLast = e.J, e.Misfit, e.Gnorm
		res.Iters = iter
		res.V = v
		if e.Gnorm <= opt.GradTol*res.GnormInit || e.Gnorm <= opt.AbsGradTol {
			res.Converged = true
			break
		}
		if iter >= opt.MaxIters {
			break
		}
		dir := p.ApplyPrec(e.G)
		dir.Scale(-1)
		slope := e.G.Dot(dir)
		if !(slope < 0) {
			// Indefinite preconditioner state (or a NaN slope): fall back
			// to -g.
			dir = e.G.Clone()
			dir.Scale(-1)
			slope = e.G.Dot(dir)
			if !(slope < 0) {
				break
			}
		}
		alpha, trials, cand := armijo(p, v, dir, e.J, slope, opt)
		res.History = append(res.History, IterRecord{
			Iter: iter, J: e.J, Misfit: e.Misfit, Gnorm: e.Gnorm, Step: alpha, LineTrial: trials,
		})
		opt.logf("sd %3d: J=%.6e ||g||=%.3e alpha=%.3g", iter, e.J, e.Gnorm, alpha)
		if alpha == 0 {
			break
		}
		v = cand
		if opt.OnIterate != nil {
			opt.OnIterate(v, Progress{
				Iter: iter + 1, JInit: res.JInit, MisfitInit: res.MisfitInit,
				GnormInit: res.GnormInit, History: res.History,
			})
		}
	}
	return res
}

// Continuation runs the Newton solver over a decreasing schedule of
// regularization weights, warm-starting each level from the previous
// solution — the paper's "parameter continuation on beta" for the highly
// nonlinear regime. setBeta mutates the problem's weight; betas must be
// decreasing and the problem is left at the last value.
//
// When a level fails (non-finite state the guards could not contain), the
// escalation ladder retries the level once at the geometric mean of the
// failed beta and its predecessor — "raise beta one continuation level" —
// restarting from the last good iterate; if the retry fails too, the last
// good result is returned with the accumulated degradation trail. A
// Resume state applies to the first level of the schedule only.
func Continuation[T Vec[T]](p Objective[T], setBeta func(float64), v0 T, betas []float64, opt NewtonOptions) *Result[T] {
	v := v0
	var last *Result[T]
	var degr []string
	prevBeta := 0.0
	for li := 0; li < len(betas); li++ {
		b := betas[li]
		setBeta(b)
		if opt.OnLevel != nil {
			opt.OnLevel(li, b)
		}
		opt.logf("continuation: beta=%.3e", b)
		last = GaussNewton(p, v, opt)
		opt.Resume = nil // a checkpoint resumes the level it was taken in
		degr = append(degr, last.Degradations...)
		if last.Interrupted {
			break
		}
		if last.Failed && prevBeta > b {
			// Raise beta one (half-)level and retry from the last good
			// iterate of the previous level.
			bRetry := math.Sqrt(prevBeta * b)
			setBeta(bRetry)
			if opt.OnLevel != nil {
				// Keep level/beta bookkeeping (checkpoint records) on the
				// active value: a checkpoint written during the retry must
				// resume at bRetry, not the failed schedule entry.
				opt.OnLevel(li, bRetry)
			}
			degr = append(degr, fmt.Sprintf("level %d (beta=%.3e) failed; retrying at beta=%.3e from the previous level's iterate", li, b, bRetry))
			opt.logf("continuation: level %d failed, retrying at beta=%.3e", li, bRetry)
			retry := GaussNewton(p, v, opt)
			degr = append(degr, retry.Degradations...)
			if retry.Failed || retry.Interrupted {
				retry.Degradations = degr
				return retry
			}
			last = retry
			b = bRetry
		}
		if last.Failed {
			break
		}
		v = last.V
		prevBeta = b
	}
	if last != nil {
		last.Degradations = degr
	}
	return last
}
