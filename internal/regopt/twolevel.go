package regopt

import (
	"fmt"

	"diffreg/internal/field"
	"diffreg/internal/grid"
	"diffreg/internal/optim"
	"diffreg/internal/pfft"
	"diffreg/internal/spectral"
)

// TwoLevelPrec is a two-level preconditioner for the reduced Hessian, the
// "multilevel preconditioning" the paper lists among the remedies for its
// beta-sensitive single-level preconditioner (§ Limitations; the approach
// follows the two-level preconditioned solver of Mang & Biros referenced
// as [47]). The preconditioner splits the residual spectrally:
//
//	M^{-1} r = Prolong( Hc^{-1} Restrict(r) ) + (beta A)^{-1} (I - Pi) r,
//
// where Restrict/Prolong are exact spectral transfer operators to a grid
// coarsened by two, Pi = Prolong∘Restrict is the low-mode projector, and
// Hc is the Gauss-Newton Hessian of the restricted problem, inverted
// approximately by a fixed number of CG iterations. The coarse Hessian
// captures the data term on the low modes — exactly where the pure
// inverse-regularization preconditioner is weakest at small beta.
//
// The grid transfers are fully distributed: the shared Fourier modes are
// routed directly between the two pencil layouts (pfft.TransferSpectrum),
// so no rank ever holds a global field.
type TwoLevelPrec struct {
	Fine   *Problem
	Coarse *Problem

	coarsePe *grid.Pencil
	// CoarseIters bounds the inner CG solve on the coarse Hessian. A fixed
	// small count keeps the preconditioner (nearly) linear, which standard
	// (non-flexible) outer PCG needs.
	CoarseIters int

	cur *Eval // coarse eval at the restriction of the current velocity
}

// NewTwoLevelPrec builds the coarse companion problem: the images are
// spectrally restricted to the halved grid.
func NewTwoLevelPrec(p *Problem, coarseIters int) (*TwoLevelPrec, error) {
	pe := p.Pe
	fine := pe.Grid.N
	coarse := [3]int{}
	minDims := [3]int{max(8, 4*pe.P[0]), max(8, 4*pe.P[1]), 8}
	for d := 0; d < 3; d++ {
		n := fine[d] / 2
		if n%2 == 1 {
			n++
		}
		if n < minDims[d] {
			n = minDims[d]
		}
		if n >= fine[d] {
			return nil, fmt.Errorf("regopt: grid %v too small for a two-level preconditioner", fine)
		}
		coarse[d] = n
	}
	gc, err := grid.New(coarse[0], coarse[1], coarse[2])
	if err != nil {
		return nil, err
	}
	cpe, err := grid.NewPencil(gc, pe.Comm)
	if err != nil {
		return nil, err
	}
	cops := spectral.New(pfft.NewPlan(cpe))
	rhoTc := spectral.Resample(p.Ops, cops, p.RhoT)
	rhoRc := spectral.Resample(p.Ops, cops, p.RhoR)
	copt := p.Opt
	copt.TwoLevelPrec = false // no recursive coarsening
	copt.ShiftedPrec = false
	cp, err := New(cops, rhoTc, rhoRc, copt)
	if err != nil {
		return nil, err
	}
	if coarseIters < 1 {
		coarseIters = 10
	}
	return &TwoLevelPrec{Fine: p, Coarse: cp, coarsePe: cpe, CoarseIters: coarseIters}, nil
}

// Refresh re-evaluates the coarse problem at the restriction of the
// current fine velocity; called once per (fine) gradient evaluation.
func (tl *TwoLevelPrec) Refresh(v *field.Vector) {
	vc := spectral.ResampleVector(tl.Fine.Ops, tl.Coarse.Ops, v)
	if tl.Fine.Opt.Incompressible {
		vc = tl.Coarse.Ops.Leray(vc)
	}
	tl.cur = tl.Coarse.EvalGradient(vc)
}

// Apply evaluates the two-level preconditioner on a fine residual.
func (tl *TwoLevelPrec) Apply(r *field.Vector) *field.Vector {
	if tl.cur == nil {
		// No coarse state yet (first gradient not evaluated): fall back to
		// the single-level spectral preconditioner.
		return tl.Fine.invRegApply(r)
	}
	// Coarse correction on the low modes.
	rc := spectral.ResampleVector(tl.Fine.Ops, tl.Coarse.Ops, r)
	sol, _ := optim.PCG(
		func(w *field.Vector) *field.Vector { return tl.Coarse.HessMatVec(tl.cur, w) },
		func(w *field.Vector) *field.Vector { return tl.Coarse.invRegApply(w) },
		rc, 1e-10, tl.CoarseIters,
	)
	low := spectral.ResampleVector(tl.Coarse.Ops, tl.Fine.Ops, sol)

	// High-mode smoothing: (beta A)^{-1} applied to the spectral
	// complement of the coarse space.
	hi := tl.Fine.highPass(r, tl.coarsePe.Grid.N)
	out := tl.Fine.invRegApply(hi)
	out.Axpy(1, low)
	return out
}

// invRegApply is the single-level inverse-regularization preconditioner
// (without the data shift).
func (p *Problem) invRegApply(r *field.Vector) *field.Vector {
	beta := p.Opt.Beta
	h2 := p.Opt.Reg == RegH2
	return p.Ops.DiagVector(r, func(k1, k2, k3 int) float64 {
		q := float64(k1*k1 + k2*k2 + k3*k3)
		a := q
		if h2 {
			a = q * q
		}
		if a == 0 {
			a = 1
		}
		return 1 / (beta * a)
	})
}

// highPass zeroes every mode representable on the coarse grid.
func (p *Problem) highPass(r *field.Vector, coarse [3]int) *field.Vector {
	return p.Ops.DiagVector(r, func(k1, k2, k3 int) float64 {
		if onCoarse(k1, coarse[0]) && onCoarse(k2, coarse[1]) && onCoarse(k3, coarse[2]) {
			return 0
		}
		return 1
	})
}

// onCoarse reports whether signed wavenumber k is representable (below
// Nyquist) on a grid of size n.
func onCoarse(k, n int) bool { return 2*k < n && 2*k > -n }
