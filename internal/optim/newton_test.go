package optim

import (
	"math"
	"testing"
)

// dvec is a small dense vector for adversarial unit tests of the driver
// logic, where spinning up the distributed stack would obscure the point.
type dvec []float64

func (v dvec) Clone() dvec {
	out := make(dvec, len(v))
	copy(out, v)
	return out
}

func (v dvec) Axpy(a float64, x dvec) {
	for i := range v {
		v[i] += a * x[i]
	}
}

func (v dvec) Scale(a float64) {
	for i := range v {
		v[i] *= a
	}
}

func (v dvec) Dot(x dvec) float64 {
	s := 0.0
	for i := range v {
		s += v[i] * x[i]
	}
	return s
}

func (v dvec) NormL2() float64 { return math.Sqrt(v.Dot(v)) }

// adversarial is a benign convex quadratic J(v) = 1/2 <v, Av> - <b, v>
// (diagonal SPD A) reported through hostile operator callbacks: the
// Hessian matvec claims negative curvature and the preconditioner flips
// signs. The PCG direction is then unusable and the preconditioned
// gradient "fallback" -M g = +g is an ASCENT direction — exactly the
// state the slope guard must catch by falling back to -g.
type adversarial struct {
	a, b  dvec
	evals int
}

func (p *adversarial) vals(v dvec) ObjVals {
	j := 0.0
	for i := range v {
		j += 0.5*p.a[i]*v[i]*v[i] - p.b[i]*v[i]
	}
	return ObjVals{J: j, Misfit: j}
}

func (p *adversarial) Evaluate(v dvec) ObjVals {
	p.evals++
	return p.vals(v)
}

func (p *adversarial) EvalGradient(v dvec) GradVals[dvec] {
	g := make(dvec, len(v))
	for i := range v {
		g[i] = p.a[i]*v[i] - p.b[i]
	}
	o := p.vals(v)
	return GradVals[dvec]{J: o.J, Misfit: o.Misfit, G: g, Gnorm: g.NormL2()}
}

// HessMatVec lies: it returns -w, so the very first PCG step sees negative
// curvature and bails out with no iterations.
func (p *adversarial) HessMatVec(w dvec) dvec {
	out := w.Clone()
	out.Scale(-1)
	return out
}

// ApplyPrec is sign-flipping (indefinite): the "preconditioned gradient"
// fallback direction -M g points uphill.
func (p *adversarial) ApplyPrec(r dvec) dvec {
	out := r.Clone()
	out.Scale(-1)
	return out
}

func (p *adversarial) Project(v dvec) dvec { return v }

// TestGaussNewtonSurvivesNonDescentDirections pins the Armijo guard: with
// an indefinite Hessian *and* an indefinite preconditioner the driver must
// detect that both candidate directions point uphill, fall back to plain
// steepest descent, and still make monotone progress on the objective.
// Before the guard, the backtracking line search burned MaxLineSearch
// evaluations on an ascent direction and the solver stalled at the initial
// point.
func TestGaussNewtonSurvivesNonDescentDirections(t *testing.T) {
	// Curvatures in (0, 2) keep the full -g step inside the Armijo cone, so
	// the fallback converges geometrically and the assertions stay sharp.
	p := &adversarial{a: dvec{1.5, 1, 0.5}, b: dvec{1, -2, 0.5}}
	v0 := dvec{3, -3, 2}
	opt := DefaultNewtonOptions()
	opt.MaxIters = 60
	opt.GradTol = 1e-8
	res := GaussNewton[dvec](p, v0, opt)
	if res.JFinal >= res.JInit {
		t.Fatalf("no progress: J %g -> %g", res.JInit, res.JFinal)
	}
	for i, rec := range res.History {
		if rec.Step <= 0 {
			t.Errorf("iteration %d: line search failed (step %g) despite the -g fallback", i, rec.Step)
		}
	}
	if !res.Converged {
		t.Errorf("steepest-descent fallback should still converge on a diagonal quadratic: ||g|| %g -> %g",
			res.GnormInit, res.GnormLast)
	}
	// The accepted iterate of each line search is evaluated once and then
	// reused by identity; the minimum is interior so x* solves a_i x = b_i.
	for i := range res.V {
		want := p.b[i] / p.a[i]
		if math.Abs(res.V[i]-want) > 1e-6 {
			t.Errorf("component %d: got %g want %g", i, res.V[i], want)
		}
	}
}

// TestSteepestDescentSurvivesIndefinitePreconditioner covers the same
// guard on the first-order path.
func TestSteepestDescentSurvivesIndefinitePreconditioner(t *testing.T) {
	p := &adversarial{a: dvec{1.25, 0.8}, b: dvec{1, 1}}
	opt := DefaultNewtonOptions()
	opt.MaxIters = 200
	res := SteepestDescent[dvec](p, dvec{5, -5}, opt)
	if res.JFinal >= res.JInit {
		t.Fatalf("no progress: J %g -> %g", res.JInit, res.JFinal)
	}
	if !res.Converged {
		t.Errorf("not converged: ||g|| %g -> %g after %d iters", res.GnormInit, res.GnormLast, res.Iters)
	}
}

// TestForcingSequences pins the Eisenstat-Walker formulas: the paper's
// quadratic forcing is min(cap, sqrt(||g||/||g0||)); the legacy linear
// variant is min(cap, ||g||/||g0||). The sqrt keeps early Krylov solves
// loose — for any gradient ratio r < cap^2 the quadratic tolerance is
// strictly larger, which is what saves Hessian matvecs.
func TestForcingSequences(t *testing.T) {
	opt := DefaultNewtonOptions()
	cases := []struct {
		g, g0     float64
		quad, lin float64
	}{
		{1, 1, 0.5, 0.5},      // capped at start
		{0.16, 1, 0.4, 0.16},  // sqrt above ratio
		{1e-4, 1, 0.01, 1e-4}, // deep in the tail
		{0.81, 1, 0.5, 0.5},   // sqrt capped, ratio above cap too
	}
	for _, c := range cases {
		opt.Forcing = ForcingQuadratic
		if got := opt.forcingEta(c.g, c.g0); math.Abs(got-c.quad) > 1e-15 {
			t.Errorf("quadratic eta(%g/%g) = %g, want %g", c.g, c.g0, got, c.quad)
		}
		opt.Forcing = ForcingLinear
		if got := opt.forcingEta(c.g, c.g0); math.Abs(got-c.lin) > 1e-15 {
			t.Errorf("linear eta(%g/%g) = %g, want %g", c.g, c.g0, got, c.lin)
		}
	}
	if ForcingQuadratic != 0 {
		t.Error("the paper's quadratic forcing must be the zero value (default)")
	}
}
