package perfmodel

import (
	"math"
	"testing"
	"testing/quick"
)

// calWorkload is a plausible solve workload at the paper's calibration
// configuration (counts of FFTs and sweeps measured from our solver are
// in the hundreds for a converged solve).
func calWorkload(n, p int) Workload {
	return Workload{N: [3]int{n, n, n}, P: p, Nt: 4, FFTs: 400, InterpSweeps: 300}
}

func TestCalibrateReproducesTarget(t *testing.T) {
	w := calWorkload(128, 16)
	target := MaverickCalibration()
	m := Calibrate("maverick", w, target)
	got := Predict(w, m)
	for _, pair := range [][2]float64{
		{got.TimeToSolution, target.TimeToSolution},
		{got.FFTComm, target.FFTComm},
		{got.FFTExec, target.FFTExec},
		{got.InterpComm, target.InterpComm},
		{got.InterpExec, target.InterpExec},
	} {
		if math.Abs(pair[0]-pair[1]) > 1e-9*pair[1] {
			t.Errorf("calibration row not reproduced: got %g want %g", pair[0], pair[1])
		}
	}
}

func TestCalibratedConstantsPlausible(t *testing.T) {
	m := Calibrate("maverick", calWorkload(128, 16), MaverickCalibration())
	// Rates should land in the 0.1-100 Gflop/s per task range for 2016 x86.
	if m.FFTRate < 1e8 || m.FFTRate > 1e11 {
		t.Errorf("FFT rate %g implausible", m.FFTRate)
	}
	if m.InterpRate < 1e8 || m.InterpRate > 1e11 {
		t.Errorf("interp rate %g implausible", m.InterpRate)
	}
	if m.Ts < 0 || m.Ts > 1e-2 {
		t.Errorf("latency %g implausible", m.Ts)
	}
	if m.FFTTw <= 0 || m.FFTTw > 1e-5 {
		t.Errorf("fft word time %g implausible", m.FFTTw)
	}
	if m.InterpTw <= 0 || m.InterpTw > 1e-5 {
		t.Errorf("interp word time %g implausible", m.InterpTw)
	}
	// Interpolation is memory bound: its rate must be below the FFT rate.
	if m.InterpRate > m.FFTRate*10 {
		t.Errorf("interp rate %g vs fft rate %g", m.InterpRate, m.FFTRate)
	}
}

func TestStrongScalingShape(t *testing.T) {
	// Time to solution must decrease with p, and the FFT communication
	// fraction must grow — the paper's central strong-scaling observation.
	m := Calibrate("maverick", calWorkload(128, 16), MaverickCalibration())
	w32 := calWorkload(256, 32)
	w512 := calWorkload(256, 512)
	b32 := Predict(w32, m)
	b512 := Predict(w512, m)
	if b512.TimeToSolution >= b32.TimeToSolution {
		t.Errorf("no speedup: %g -> %g", b32.TimeToSolution, b512.TimeToSolution)
	}
	frac32 := b32.FFTComm / b32.TimeToSolution
	frac512 := b512.FFTComm / b512.TimeToSolution
	if frac512 <= frac32 {
		t.Errorf("FFT comm fraction should grow with p: %g -> %g", frac32, frac512)
	}
	// Interpolation dominates at low task counts.
	if b32.InterpExec < b32.FFTExec {
		t.Errorf("interpolation should dominate exec at low p: %g vs %g", b32.InterpExec, b32.FFTExec)
	}
}

func TestEfficiencyDecaysButStaysReasonable(t *testing.T) {
	// Paper: 256^3 from 32 to 512 tasks has ~67% efficiency, 32->1024 ~50%.
	m := Calibrate("maverick", calWorkload(128, 16), MaverickCalibration())
	t32 := Predict(calWorkload(256, 32), m).TimeToSolution
	t512 := Predict(calWorkload(256, 512), m).TimeToSolution
	t1024 := Predict(calWorkload(256, 1024), m).TimeToSolution
	e512 := Efficiency(t32, 32, t512, 512)
	e1024 := Efficiency(t32, 32, t1024, 1024)
	if e512 < 0.3 || e512 > 1.05 {
		t.Errorf("efficiency 32->512 = %g out of plausible band", e512)
	}
	if e1024 >= e512 {
		t.Errorf("efficiency should decay: %g -> %g", e512, e1024)
	}
}

func TestWeakScalingFFTExecNearlyFlat(t *testing.T) {
	// Runs #3, #8, #13 of Table I: 8x problem and 8x tasks keep FFT
	// execution nearly constant (1.35 -> 1.56 -> 1.77 in the paper).
	m := Calibrate("maverick", calWorkload(128, 16), MaverickCalibration())
	prev := 0.0
	for i, cfg := range []struct{ n, p int }{{128, 16}, {256, 128}, {512, 1024}} {
		b := Predict(calWorkload(cfg.n, cfg.p), m)
		if i > 0 {
			ratio := b.FFTExec / prev
			if ratio < 0.9 || ratio > 1.5 {
				t.Errorf("weak scaling FFT exec ratio %g at step %d", ratio, i)
			}
		}
		prev = b.FFTExec
	}
}

func TestPredictSerialHasNoComm(t *testing.T) {
	m := Calibrate("maverick", calWorkload(128, 16), MaverickCalibration())
	b := Predict(calWorkload(64, 1), m)
	if b.FFTComm != 0 || b.InterpComm != 0 {
		t.Errorf("serial run should have zero comm: %+v", b)
	}
	if b.TimeToSolution <= 0 {
		t.Errorf("nonpositive time")
	}
}

func TestPredictMonotoneInWorkProperty(t *testing.T) {
	m := Calibrate("maverick", calWorkload(128, 16), MaverickCalibration())
	f := func(extraF, extraI uint16) bool {
		w := calWorkload(128, 64)
		w2 := w
		w2.FFTs += int64(extraF)
		w2.InterpSweeps += int64(extraI)
		a := Predict(w, m).TimeToSolution
		b := Predict(w2, m).TimeToSolution
		return b >= a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestEfficiency(t *testing.T) {
	if e := Efficiency(10, 32, 5, 64); e != 1 {
		t.Errorf("perfect scaling should be 1, got %g", e)
	}
	if e := Efficiency(10, 32, 10, 64); e != 0.5 {
		t.Errorf("no speedup at 2x tasks should be 0.5, got %g", e)
	}
}

func TestApplyThreading(t *testing.T) {
	w := calWorkload(256, 64)
	m := Calibrate("x", w, MaverickCalibration())
	b := Predict(w, m)
	b4 := ApplyThreading(b, 4)
	if got, want := b4.FFTExec, b.FFTExec/4; math.Abs(got-want) > 1e-12*want {
		t.Fatalf("FFTExec = %v, want %v", got, want)
	}
	if got, want := b4.InterpExec, b.InterpExec/4; math.Abs(got-want) > 1e-12*want {
		t.Fatalf("InterpExec = %v, want %v", got, want)
	}
	if b4.FFTComm != b.FFTComm || b4.InterpComm != b.InterpComm {
		t.Fatalf("communication terms must be unchanged by threading")
	}
	if b4.TimeToSolution >= b.TimeToSolution {
		t.Fatalf("threading did not reduce time to solution: %v -> %v", b.TimeToSolution, b4.TimeToSolution)
	}
	if got := ApplyThreading(b, 1); got != b {
		t.Fatalf("speedup 1 must be the identity")
	}
	if got := ApplyThreading(b, 0.5); got != b {
		t.Fatalf("sub-unit speedups must be ignored")
	}
}
